"""EfficientNet-B0 builder (Tan & Le), 224x224x3 input.

MBConv inverted-bottleneck stages.  Squeeze-and-excitation blocks are
omitted (about 3% of total FLOPs) because their global pooling would
break spatial tileability of every stage; the depthwise-heavy FLOP mix
-- the property the paper's Fig. 1 exploits -- is preserved.  Published
cost ~0.39 GMACs (~0.78 GFLOPs at 2 FLOPs/MAC).
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import Add, Conv2D, Dense, DepthwiseConv2D, GlobalAvgPool, Softmax
from repro.dnn.tensors import image

#: (expansion, output channels, repeats, kernel, first stride) per stage.
_STAGES = (
    (1, 16, 1, 3, 1),
    (6, 24, 2, 3, 2),
    (6, 40, 2, 5, 2),
    (6, 80, 3, 3, 2),
    (6, 112, 3, 5, 1),
    (6, 192, 4, 5, 2),
    (6, 320, 1, 3, 1),
)


def _mbconv(
    builder: GraphBuilder,
    stage: int,
    block: int,
    in_channels: int,
    expansion: int,
    out_channels: int,
    kernel: int,
    stride: int,
) -> int:
    """Append one MBConv block; returns its output channel count."""
    prefix = f"block{stage + 1}{chr(ord('a') + block)}"
    entry = builder.last
    expanded = in_channels * expansion
    last = entry
    if expansion != 1:
        last = builder.add(
            Conv2D(name=f"{prefix}_expand", filters=expanded, kernel_size=1, strides=1, pad="same"),
            after=last,
        )
    last = builder.add(
        DepthwiseConv2D(name=f"{prefix}_dwconv", kernel_size=kernel, strides=stride, pad="same"),
        after=last,
    )
    last = builder.add(
        Conv2D(
            name=f"{prefix}_project",
            filters=out_channels,
            kernel_size=1,
            strides=1,
            pad="same",
            activation="linear",
        ),
        after=last,
    )
    if stride == 1 and in_channels == out_channels:
        builder.add(Add(name=f"{prefix}_add"), after=(last, entry))
    return out_channels


def build_efficientnet_b0(input_side: int = 224) -> DNNGraph:
    """Construct the EfficientNet-B0 layer graph (SE blocks omitted)."""
    builder = GraphBuilder("efficientnet_b0", image(input_side, 3))
    builder.add(Conv2D(name="stem_conv", filters=32, kernel_size=3, strides=2, pad="same"))
    channels = 32
    for stage, (expansion, out_channels, repeats, kernel, stride) in enumerate(_STAGES):
        for block in range(repeats):
            block_stride = stride if block == 0 else 1
            channels = _mbconv(
                builder, stage, block, channels, expansion, out_channels, kernel, block_stride
            )
    builder.add(Conv2D(name="top_conv", filters=1280, kernel_size=1, strides=1, pad="same"))
    builder.add(GlobalAvgPool(name="avg_pool"))
    builder.add(Dense(name="fc1000", units=1000, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

"""ResNet-152 builder (He et al.), 224x224x3 input.

Stage plan 3/8/36/3 bottleneck blocks.  Published cost ~11.3 GMACs
(~22.6 GFLOPs with the 2-FLOPs-per-MAC convention).  Residual joins
mean cut points only exist *between* bottleneck blocks, giving the DP
partitioner ~51 coarse segments to work with.
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import Activation, Add, Conv2D, Dense, GlobalAvgPool, Pool2D, Softmax
from repro.dnn.tensors import image

#: (bottleneck width, block count) per stage; output channels are 4x width.
_STAGES = ((64, 3), (128, 8), (256, 36), (512, 3))


def _bottleneck(builder: GraphBuilder, stage: int, block: int, width: int, stride: int) -> None:
    """Append one bottleneck residual block to the builder."""
    prefix = f"conv{stage + 2}_block{block + 1}"
    entry = builder.last
    out_channels = 4 * width
    builder.add(
        Conv2D(name=f"{prefix}_1x1a", filters=width, kernel_size=1, strides=stride, pad="same"),
        after=entry,
    )
    builder.add(Conv2D(name=f"{prefix}_3x3", filters=width, kernel_size=3, strides=1, pad="same"))
    main = builder.add(
        Conv2D(
            name=f"{prefix}_1x1b",
            filters=out_channels,
            kernel_size=1,
            strides=1,
            pad="same",
            activation="linear",
        )
    )
    if block == 0:
        shortcut = builder.add(
            Conv2D(
                name=f"{prefix}_proj",
                filters=out_channels,
                kernel_size=1,
                strides=stride,
                pad="same",
                activation="linear",
            ),
            after=entry,
        )
    else:
        shortcut = entry
    builder.add(Add(name=f"{prefix}_add"), after=(main, shortcut))
    builder.add(Activation(name=f"{prefix}_relu", fn="relu"))


def build_resnet152(input_side: int = 224) -> DNNGraph:
    """Construct the ResNet-152 layer graph."""
    builder = GraphBuilder("resnet152", image(input_side, 3))
    builder.add(Conv2D(name="conv1", filters=64, kernel_size=7, strides=2, pad="same"))
    builder.add(Pool2D(name="pool1", pool_size=3, strides=2, pad="same"))
    for stage, (width, blocks) in enumerate(_STAGES):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            _bottleneck(builder, stage, block, width, stride)
    builder.add(GlobalAvgPool(name="avg_pool"))
    builder.add(Dense(name="fc1000", units=1000, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

"""Model zoo: the paper's four evaluation networks plus toy graphs."""

from __future__ import annotations

from typing import Callable, Dict

from repro.dnn.graph import DNNGraph
from repro.dnn.models.efficientnet import build_efficientnet_b0
from repro.dnn.models.inception import build_inception_v3
from repro.dnn.models.mobilenet import build_mobilenet_v2
from repro.dnn.models.resnet import build_resnet152
from repro.dnn.models.toy import (
    build_tiny_branchy,
    build_tiny_cnn,
    build_tiny_depthwise,
    build_tiny_residual,
)
from repro.dnn.models.vgg import build_vgg19

#: Canonical evaluation models of the paper, in the order used by its plots.
MODEL_NAMES = ("efficientnet_b0", "inception_v3", "resnet152", "vgg19")

_REGISTRY: Dict[str, Callable[[], DNNGraph]] = {
    "efficientnet_b0": build_efficientnet_b0,
    "inception_v3": build_inception_v3,
    "resnet152": build_resnet152,
    "vgg19": build_vgg19,
    "mobilenet_v2": build_mobilenet_v2,
    "tiny_cnn": build_tiny_cnn,
    "tiny_residual": build_tiny_residual,
    "tiny_branchy": build_tiny_branchy,
    "tiny_depthwise": build_tiny_depthwise,
}

_CACHE: Dict[str, DNNGraph] = {}


def build_model(name: str, fresh: bool = False) -> DNNGraph:
    """Build (and memoise) a model from the zoo by name.

    ``fresh=True`` bypasses the memo and returns a brand-new graph with
    cold plan-level caches -- what benchmarks use to measure cold-start
    planning.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(_REGISTRY)}")
    if fresh:
        return _REGISTRY[name]()
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name]()
    return _CACHE[name]


def available_models() -> tuple:
    """All registry names, including toy graphs."""
    return tuple(sorted(_REGISTRY))


__all__ = [
    "MODEL_NAMES",
    "build_model",
    "available_models",
    "build_efficientnet_b0",
    "build_inception_v3",
    "build_resnet152",
    "build_vgg19",
    "build_mobilenet_v2",
    "build_tiny_cnn",
    "build_tiny_residual",
    "build_tiny_branchy",
    "build_tiny_depthwise",
]

"""InceptionNet-V3 builder (Szegedy et al.), 299x299x3 input.

Standard stem + 3x Inception-A + Reduction-A + 4x Inception-B +
Reduction-B + 2x Inception-C, then global pooling and the classifier.
Published cost ~5.7 GMACs (~11.4 GFLOPs at 2 FLOPs/MAC).  The wide
multi-branch modules produce large single segments, which is why the
paper observes Inception preferring fewer, coarser data partitions
(Fig. 1 anchor: best at P6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import Concat, Conv2D, Dense, GlobalAvgPool, Pool2D, Softmax
from repro.dnn.tensors import image


def _conv(
    builder: GraphBuilder,
    name: str,
    filters: int,
    kernel: "int | Tuple[int, int]",
    stride: int = 1,
    pad: str = "same",
    after: str | None = None,
) -> str:
    return builder.add(
        Conv2D(name=name, filters=filters, kernel_size=kernel, strides=stride, pad=pad),
        after=after,
    )


def _branch(builder: GraphBuilder, entry: str, prefix: str, plan: Sequence[tuple]) -> str:
    """A chain of convs described by (filters, kernel, stride, pad) tuples."""
    last = entry
    for idx, (filters, kernel, stride, pad) in enumerate(plan):
        last = _conv(builder, f"{prefix}_{idx}", filters, kernel, stride, pad, after=last)
    return last


def _inception_a(builder: GraphBuilder, idx: int, pool_filters: int) -> None:
    entry = builder.last
    prefix = f"mixed_a{idx}"
    b1 = _branch(builder, entry, f"{prefix}_b1", [(64, 1, 1, "same")])
    b2 = _branch(builder, entry, f"{prefix}_b2", [(48, 1, 1, "same"), (64, 5, 1, "same")])
    b3 = _branch(
        builder,
        entry,
        f"{prefix}_b3",
        [(64, 1, 1, "same"), (96, 3, 1, "same"), (96, 3, 1, "same")],
    )
    pool = builder.add(
        Pool2D(name=f"{prefix}_pool", pool_size=3, strides=1, pad="same", mode="avg"), after=entry
    )
    b4 = _conv(builder, f"{prefix}_b4", pool_filters, 1, after=pool)
    builder.add(Concat(name=f"{prefix}_concat"), after=(b1, b2, b3, b4))


def _reduction_a(builder: GraphBuilder) -> None:
    entry = builder.last
    b1 = _conv(builder, "red_a_b1", 384, 3, stride=2, pad="valid", after=entry)
    b2 = _branch(
        builder,
        entry,
        "red_a_b2",
        [(64, 1, 1, "same"), (96, 3, 1, "same"), (96, 3, 2, "valid")],
    )
    b3 = builder.add(Pool2D(name="red_a_pool", pool_size=3, strides=2, pad="valid"), after=entry)
    builder.add(Concat(name="red_a_concat"), after=(b1, b2, b3))


def _inception_b(builder: GraphBuilder, idx: int, mid: int) -> None:
    """7x7-factorised module with genuine 1x7 / 7x1 convolution pairs."""
    entry = builder.last
    prefix = f"mixed_b{idx}"
    b1 = _conv(builder, f"{prefix}_b1", 192, 1, after=entry)
    b2 = _branch(
        builder,
        entry,
        f"{prefix}_b2",
        [(mid, 1, 1, "same"), (mid, (1, 7), 1, "same"), (192, (7, 1), 1, "same")],
    )
    b3 = _branch(
        builder,
        entry,
        f"{prefix}_b3",
        [
            (mid, 1, 1, "same"),
            (mid, (7, 1), 1, "same"),
            (mid, (1, 7), 1, "same"),
            (mid, (7, 1), 1, "same"),
            (192, (1, 7), 1, "same"),
        ],
    )
    pool = builder.add(
        Pool2D(name=f"{prefix}_pool", pool_size=3, strides=1, pad="same", mode="avg"), after=entry
    )
    b4 = _conv(builder, f"{prefix}_b4", 192, 1, after=pool)
    builder.add(Concat(name=f"{prefix}_concat"), after=(b1, b2, b3, b4))


def _reduction_b(builder: GraphBuilder) -> None:
    entry = builder.last
    b1 = _branch(builder, entry, "red_b_b1", [(192, 1, 1, "same"), (320, 3, 2, "valid")])
    b2 = _branch(
        builder,
        entry,
        "red_b_b2",
        [(192, 1, 1, "same"), (192, (1, 7), 1, "same"), (192, (7, 1), 1, "same"), (192, 3, 2, "valid")],
    )
    b3 = builder.add(Pool2D(name="red_b_pool", pool_size=3, strides=2, pad="valid"), after=entry)
    builder.add(Concat(name="red_b_concat"), after=(b1, b2, b3))


def _inception_c(builder: GraphBuilder, idx: int) -> None:
    entry = builder.last
    prefix = f"mixed_c{idx}"
    b1 = _conv(builder, f"{prefix}_b1", 320, 1, after=entry)
    b2_stem = _conv(builder, f"{prefix}_b2_stem", 384, 1, after=entry)
    b2a = _conv(builder, f"{prefix}_b2a", 384, (1, 3), after=b2_stem)
    b2b = _conv(builder, f"{prefix}_b2b", 384, (3, 1), after=b2_stem)
    b3_stem = _branch(builder, entry, f"{prefix}_b3_stem", [(448, 1, 1, "same"), (384, 3, 1, "same")])
    b3a = _conv(builder, f"{prefix}_b3a", 384, (1, 3), after=b3_stem)
    b3b = _conv(builder, f"{prefix}_b3b", 384, (3, 1), after=b3_stem)
    pool = builder.add(
        Pool2D(name=f"{prefix}_pool", pool_size=3, strides=1, pad="same", mode="avg"), after=entry
    )
    b4 = _conv(builder, f"{prefix}_b4", 192, 1, after=pool)
    builder.add(Concat(name=f"{prefix}_concat"), after=(b1, b2a, b2b, b3a, b3b, b4))


def build_inception_v3(input_side: int = 299) -> DNNGraph:
    """Construct the InceptionNet-V3 layer graph."""
    builder = GraphBuilder("inception_v3", image(input_side, 3))
    _conv(builder, "stem_conv1", 32, 3, stride=2, pad="valid")
    _conv(builder, "stem_conv2", 32, 3, stride=1, pad="valid")
    _conv(builder, "stem_conv3", 64, 3, stride=1, pad="same")
    builder.add(Pool2D(name="stem_pool1", pool_size=3, strides=2, pad="valid"))
    _conv(builder, "stem_conv4", 80, 1, stride=1, pad="valid")
    _conv(builder, "stem_conv5", 192, 3, stride=1, pad="valid")
    builder.add(Pool2D(name="stem_pool2", pool_size=3, strides=2, pad="valid"))
    for idx, pool_filters in enumerate((32, 64, 64)):
        _inception_a(builder, idx, pool_filters)
    _reduction_a(builder)
    for idx, mid in enumerate((128, 160, 160, 192)):
        _inception_b(builder, idx, mid)
    _reduction_b(builder)
    for idx in range(2):
        _inception_c(builder, idx)
    builder.add(GlobalAvgPool(name="avg_pool"))
    builder.add(Dense(name="fc1000", units=1000, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

"""VGG-19 builder (Simonyan & Zisserman), 224x224x3 input.

Published cost is ~19.6 GMACs; with the 2-FLOPs-per-MAC convention of
this package the graph totals ~39 GFLOPs.  The dense head carries
~123 M parameters, which is what makes VGG the heaviest model to ship
between nodes and a natural candidate for late cut points.
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import Conv2D, Dense, Flatten, Pool2D, Softmax
from repro.dnn.tensors import image

#: Convolution plan: (number of conv layers, output channels) per block.
_BLOCKS = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def build_vgg19(input_side: int = 224) -> DNNGraph:
    """Construct the VGG-19 layer graph."""
    builder = GraphBuilder("vgg19", image(input_side, 3))
    for block_idx, (count, channels) in enumerate(_BLOCKS):
        for conv_idx in range(count):
            builder.add(
                Conv2D(
                    name=f"block{block_idx + 1}_conv{conv_idx + 1}",
                    filters=channels,
                    kernel_size=3,
                    strides=1,
                    pad="same",
                )
            )
        builder.add(Pool2D(name=f"block{block_idx + 1}_pool", pool_size=2, strides=2))
    builder.add(Flatten(name="flatten"))
    builder.add(Dense(name="fc1", units=4096))
    builder.add(Dense(name="fc2", units=4096))
    builder.add(Dense(name="fc3", units=1000, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

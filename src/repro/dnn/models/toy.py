"""Small synthetic CNNs for fast tests, numeric-equivalence proofs and
documentation examples.

These graphs are small enough that the numpy numeric executor can run
them in milliseconds, which is what the accuracy-equivalence property
tests use.
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import (
    Add,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    Pool2D,
    Softmax,
)
from repro.dnn.tensors import image


def build_tiny_cnn(input_side: int = 32, channels: int = 3) -> DNNGraph:
    """Sequential conv/pool/dense toy: the smallest interesting graph."""
    builder = GraphBuilder("tiny_cnn", image(input_side, channels))
    builder.add(Conv2D(name="conv1", filters=8, kernel_size=3, strides=1, pad="same"))
    builder.add(Pool2D(name="pool1", pool_size=2, strides=2))
    builder.add(Conv2D(name="conv2", filters=16, kernel_size=3, strides=1, pad="same"))
    builder.add(Pool2D(name="pool2", pool_size=2, strides=2))
    builder.add(Flatten(name="flatten"))
    builder.add(Dense(name="fc", units=10, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()


def build_tiny_residual(input_side: int = 32) -> DNNGraph:
    """Toy with a residual join, exercising DAG cut-point logic."""
    builder = GraphBuilder("tiny_residual", image(input_side, 3))
    builder.add(Conv2D(name="stem", filters=8, kernel_size=3, strides=1, pad="same"))
    entry = builder.last
    main = builder.add(
        Conv2D(name="res_conv1", filters=8, kernel_size=3, strides=1, pad="same"), after=entry
    )
    main = builder.add(
        Conv2D(name="res_conv2", filters=8, kernel_size=3, strides=1, pad="same"), after=main
    )
    builder.add(Add(name="res_add"), after=(main, entry))
    builder.add(Pool2D(name="pool", pool_size=2, strides=2))
    builder.add(GlobalAvgPool(name="gap"))
    builder.add(Dense(name="fc", units=10, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()


def build_tiny_branchy(input_side: int = 32) -> DNNGraph:
    """Toy with an Inception-style concat module."""
    builder = GraphBuilder("tiny_branchy", image(input_side, 3))
    builder.add(Conv2D(name="stem", filters=8, kernel_size=3, strides=1, pad="same"))
    entry = builder.last
    b1 = builder.add(
        Conv2D(name="branch1", filters=8, kernel_size=1, strides=1, pad="same"), after=entry
    )
    b2 = builder.add(
        Conv2D(name="branch2", filters=8, kernel_size=3, strides=1, pad="same"), after=entry
    )
    b3 = builder.add(
        Pool2D(name="branch3_pool", pool_size=3, strides=1, pad="same", mode="avg"), after=entry
    )
    builder.add(Concat(name="concat"), after=(b1, b2, b3))
    builder.add(Conv2D(name="mix", filters=16, kernel_size=3, strides=2, pad="same"))
    builder.add(GlobalAvgPool(name="gap"))
    builder.add(Dense(name="fc", units=10, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()


def build_tiny_depthwise(input_side: int = 32) -> DNNGraph:
    """Toy MBConv-style graph with depthwise convolutions."""
    builder = GraphBuilder("tiny_depthwise", image(input_side, 3))
    builder.add(Conv2D(name="stem", filters=8, kernel_size=3, strides=2, pad="same"))
    builder.add(Conv2D(name="expand", filters=24, kernel_size=1, strides=1, pad="same"))
    builder.add(DepthwiseConv2D(name="dw", kernel_size=3, strides=1, pad="same"))
    builder.add(
        Conv2D(name="project", filters=8, kernel_size=1, strides=1, pad="same", activation="linear")
    )
    builder.add(GlobalAvgPool(name="gap"))
    builder.add(Dense(name="fc", units=10, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

"""MobileNet-V2 builder (Sandler et al.), 224x224x3 input.

Not part of the paper's evaluation set, but the canonical depthwise-
separable network and a natural companion workload for a DNN
partitioning library: even more MBConv-dominated than EfficientNet-B0.
Published cost ~0.30 GMACs (~0.60 GFLOPs at 2 FLOPs/MAC), ~3.5 M
parameters (~3.4 M without the classifier).
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, GraphBuilder
from repro.dnn.layers import Add, Conv2D, Dense, DepthwiseConv2D, GlobalAvgPool, Softmax
from repro.dnn.tensors import image

#: (expansion, output channels, repeats, first stride) per stage.
_STAGES = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(
    builder: GraphBuilder,
    stage: int,
    block: int,
    in_channels: int,
    expansion: int,
    out_channels: int,
    stride: int,
) -> int:
    prefix = f"block_{stage}_{block}"
    entry = builder.last
    last = entry
    if expansion != 1:
        last = builder.add(
            Conv2D(
                name=f"{prefix}_expand",
                filters=in_channels * expansion,
                kernel_size=1,
                strides=1,
                pad="same",
            ),
            after=last,
        )
    last = builder.add(
        DepthwiseConv2D(name=f"{prefix}_dwconv", kernel_size=3, strides=stride, pad="same"),
        after=last,
    )
    last = builder.add(
        Conv2D(
            name=f"{prefix}_project",
            filters=out_channels,
            kernel_size=1,
            strides=1,
            pad="same",
            activation="linear",
        ),
        after=last,
    )
    if stride == 1 and in_channels == out_channels:
        builder.add(Add(name=f"{prefix}_add"), after=(last, entry))
    return out_channels


def build_mobilenet_v2(input_side: int = 224) -> DNNGraph:
    """Construct the MobileNet-V2 layer graph."""
    builder = GraphBuilder("mobilenet_v2", image(input_side, 3))
    builder.add(Conv2D(name="stem_conv", filters=32, kernel_size=3, strides=2, pad="same"))
    channels = 32
    for stage, (expansion, out_channels, repeats, stride) in enumerate(_STAGES):
        for block in range(repeats):
            channels = _inverted_residual(
                builder,
                stage,
                block,
                channels,
                expansion,
                out_channels,
                stride if block == 0 else 1,
            )
    builder.add(Conv2D(name="top_conv", filters=1280, kernel_size=1, strides=1, pad="same"))
    builder.add(GlobalAvgPool(name="avg_pool"))
    builder.add(Dense(name="fc1000", units=1000, activation="linear"))
    builder.add(Softmax(name="predictions"))
    return builder.build()

"""Tensor shape descriptors used throughout the cost model.

The simulator never materialises real activations except inside the
numeric executor (:mod:`repro.dnn.numeric`); everywhere else tensors are
described by :class:`TensorSpec`, which is enough to compute FLOPs,
memory footprints and network transfer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Bytes per element for the default (float32) activation datatype.
DEFAULT_DTYPE_BYTES = 4


@dataclass(frozen=True)
class TensorSpec:
    """Shape of an activation tensor in HWC layout.

    ``height``/``width`` are the spatial dimensions, ``channels`` the
    feature dimension.  1-D tensors (outputs of Flatten/Dense layers)
    use ``height == width == 1`` and put their length in ``channels``.
    """

    height: int
    width: int
    channels: int
    dtype_bytes: int = DEFAULT_DTYPE_BYTES

    def __post_init__(self) -> None:
        if self.height < 1 or self.width < 1 or self.channels < 1:
            raise ValueError(f"non-positive tensor dimension: {self}")
        if self.dtype_bytes < 1:
            raise ValueError(f"non-positive dtype size: {self.dtype_bytes}")

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return self.height * self.width * self.channels

    @property
    def size_bytes(self) -> int:
        """Size in bytes when serialised for a network transfer."""
        return self.numel * self.dtype_bytes

    @property
    def is_spatial(self) -> bool:
        """Whether the tensor still has a spatial extent (can be tiled)."""
        return self.height > 1 or self.width > 1

    def with_height(self, height: int) -> "TensorSpec":
        """A copy of this spec with a different number of rows."""
        return replace(self, height=height)

    def rows_bytes(self, rows: int) -> int:
        """Size in bytes of ``rows`` full-width rows of this tensor."""
        if rows < 0:
            raise ValueError(f"negative row count: {rows}")
        return rows * self.width * self.channels * self.dtype_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.height}x{self.width}x{self.channels}"


def vector(length: int, dtype_bytes: int = DEFAULT_DTYPE_BYTES) -> TensorSpec:
    """Spec for a 1-D tensor of ``length`` elements."""
    return TensorSpec(height=1, width=1, channels=length, dtype_bytes=dtype_bytes)


def image(side: int, channels: int = 3, dtype_bytes: int = DEFAULT_DTYPE_BYTES) -> TensorSpec:
    """Spec for a square input image."""
    return TensorSpec(height=side, width=side, channels=channels, dtype_bytes=dtype_bytes)

"""Partition semantics: model-wise blocks and data-wise tiles.

*Model partitioning* groups consecutive segments (see
:meth:`repro.dnn.graph.DNNGraph.segments`) into blocks that are shipped
to different executors and run as a pipeline; only the single cut
tensor crosses between blocks.

*Data partitioning* splits the spatial output of a (sub-)network into
row bands.  Each tile receives the input rows its receptive field
demands (Fused-Tile-Partitioning style halo), so tiles are fully
independent until the merge -- no per-layer exchange is needed and the
result is bit-identical to unpartitioned inference, which is what the
paper's "accuracy unchanged" claim amounts to.  The halo inflates tile
FLOPs; the inflation is computed exactly from the demand walk.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.dnn.graph import DNNGraph, Segment
from repro.dnn.layers import LAYER_CLASSES
from repro.dnn.tensors import TensorSpec
from repro.fastpath import fastpath_enabled, np


class PartitionError(ValueError):
    """Raised for infeasible partition requests."""


# --------------------------------------------------------------------------
# Model partitioning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelBlock:
    """A contiguous run of segments ``[seg_lo, seg_hi]`` (inclusive)."""

    seg_lo: int
    seg_hi: int
    flops: int
    flops_by_class: Dict[str, int]
    in_spec: TensorSpec
    out_spec: TensorSpec
    weight_bytes: int
    spatial: bool

    @property
    def name(self) -> str:
        return f"blk[{self.seg_lo}:{self.seg_hi}]"

    @property
    def num_segments(self) -> int:
        return self.seg_hi - self.seg_lo + 1


def aggregate_block(segments: Sequence[Segment], seg_lo: int, seg_hi: int) -> ModelBlock:
    """Merge segments ``[seg_lo, seg_hi]`` into one block."""
    if not 0 <= seg_lo <= seg_hi < len(segments):
        raise PartitionError(f"invalid segment range [{seg_lo}, {seg_hi}] of {len(segments)}")
    members = segments[seg_lo : seg_hi + 1]
    by_class = {cls: 0 for cls in LAYER_CLASSES}
    for seg in members:
        for cls, flops in seg.flops_by_class.items():
            by_class[cls] = by_class.get(cls, 0) + flops
    return ModelBlock(
        seg_lo=seg_lo,
        seg_hi=seg_hi,
        flops=sum(seg.flops for seg in members),
        flops_by_class=by_class,
        in_spec=members[0].in_spec,
        out_spec=members[-1].out_spec,
        weight_bytes=sum(seg.weight_bytes for seg in members),
        spatial=all(seg.spatial for seg in members),
    )


@dataclass(frozen=True)
class ModelPartition:
    """An ordered, complete grouping of a segment range into blocks."""

    graph_name: str
    blocks: Tuple[ModelBlock, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise PartitionError("model partition needs at least one block")
        for prev, cur in zip(self.blocks, self.blocks[1:]):
            if cur.seg_lo != prev.seg_hi + 1:
                raise PartitionError(f"non-contiguous blocks: {prev.name} then {cur.name}")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_flops(self) -> int:
        return sum(block.flops for block in self.blocks)


def make_model_partition(
    graph: DNNGraph,
    cuts: Sequence[int],
    segments: Optional[Sequence[Segment]] = None,
    seg_range: Optional[Tuple[int, int]] = None,
) -> ModelPartition:
    """Build a :class:`ModelPartition` from interior cut positions.

    ``cuts`` lists segment indices after which the network is cut: a cut
    at ``c`` separates segments ``<= c`` from segments ``> c``.  An
    empty ``cuts`` produces a single block covering the range.
    """
    segs = list(segments) if segments is not None else graph.segments()
    lo, hi = seg_range if seg_range is not None else (0, len(segs) - 1)
    boundaries = sorted(set(cuts))
    for cut in boundaries:
        if not lo <= cut < hi:
            raise PartitionError(f"cut {cut} outside segment range [{lo}, {hi})")
    blocks: List[ModelBlock] = []
    start = lo
    for cut in boundaries + [hi]:
        blocks.append(aggregate_block(segs, start, cut))
        start = cut + 1
    return ModelPartition(graph_name=graph.name, blocks=tuple(blocks))


# --------------------------------------------------------------------------
# Data partitioning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TileSpec:
    """One data tile: a band of rows of the spatial prefix output.

    ``out_lo/out_hi`` are rows of the prefix-end tensor this tile owns;
    ``in_lo/in_hi`` the (clamped) rows of the range-entry tensor it must
    receive, halo included.  ``flops`` is halo-inflated.
    """

    index: int
    out_lo: int
    out_hi: int
    in_lo: int
    in_hi: int
    flops: int
    flops_by_class: Dict[str, int]
    input_bytes: int
    output_bytes: int

    @property
    def out_rows(self) -> int:
        return self.out_hi - self.out_lo

    @property
    def in_rows(self) -> int:
        return self.in_hi - self.in_lo


@dataclass(frozen=True)
class DataPartition:
    """A σ-way spatial split of a segment range, plus its non-spatial tail."""

    graph_name: str
    seg_lo: int
    seg_hi: int
    prefix_end: str
    entry_layer: str
    tiles: Tuple[TileSpec, ...]
    tail_flops: int
    tail_flops_by_class: Dict[str, int]
    prefix_out_spec: TensorSpec

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_flops(self) -> int:
        """Halo-inflated total work (>= unpartitioned work)."""
        return sum(tile.flops for tile in self.tiles) + self.tail_flops

    @property
    def halo_overhead_flops(self) -> int:
        """Extra work caused by halo recomputation."""
        return self.total_flops - self._base_flops

    @property
    def base_flops(self) -> int:
        """Unpartitioned (1-tile) work of the same segment range."""
        return self._base_flops

    #: Unpartitioned reference cost, set by the factory functions.
    _base_flops: int = 0


def spatial_prefix(
    graph: DNNGraph,
    segments: Optional[Sequence[Segment]] = None,
    seg_range: Optional[Tuple[int, int]] = None,
) -> Tuple[int, int]:
    """Longest run ``[lo, p]`` of spatial segments at the start of the range.

    Returns ``(lo, p)``; ``p < lo`` means the range starts non-spatial
    and cannot be data partitioned.
    """
    segs = segments if segments is not None else graph.segments()
    lo, hi = seg_range if seg_range is not None else (0, len(segs) - 1)
    if hi >= lo and segs is graph.segments():
        return lo, graph.segment_table().spatial_prefix_end(lo, hi)
    p = lo - 1
    for idx in range(lo, hi + 1):
        if not segs[idx].spatial:
            break
        p = idx
    return lo, p


def even_shares(count: int) -> Tuple[float, ...]:
    """Equal fractional shares for ``count`` tiles."""
    if count < 1:
        raise PartitionError(f"need at least one tile, got {count}")
    return tuple(1.0 / count for _ in range(count))


def rows_from_shares(height: int, shares: Sequence[float]) -> List[Tuple[int, int]]:
    """Split ``height`` rows into contiguous bands proportional to shares.

    Zero-row bands are dropped.  Shares must be positive; they are
    normalised internally.
    """
    if height < 1:
        raise PartitionError(f"cannot split {height} rows")
    if not shares:
        raise PartitionError("no shares given")
    if any(share < 0 for share in shares):
        raise PartitionError(f"negative share in {shares}")
    total = sum(shares)
    if total <= 0:
        raise PartitionError(f"shares sum to zero: {shares}")
    bands: List[Tuple[int, int]] = []
    cursor = 0
    acc = 0.0
    for share in shares:
        acc += share / total
        end = min(height, round(acc * height))
        if end > cursor:
            bands.append((cursor, end))
            cursor = end
    if cursor < height:
        if bands:
            bands[-1] = (bands[-1][0], height)
        else:
            bands.append((0, height))
    return bands


def make_data_partition_from_shares(
    graph: DNNGraph,
    shares: Sequence[float],
    segments: Optional[Sequence[Segment]] = None,
    seg_range: Optional[Tuple[int, int]] = None,
    band: Optional[Tuple[int, int]] = None,
) -> DataPartition:
    """Split a segment range data-wise with per-tile workload shares.

    The spatial prefix of the range is tiled; remaining segments form
    the tail (executed after the merge).  ``band`` restricts the split
    to output rows ``[band[0], band[1])`` of the prefix -- this is how
    the local partitioner re-splits a tile it received from the global
    tier.  When a band is given, the tail is NOT included (the global
    merge owns it).  Raises :class:`PartitionError` if the range has no
    spatial prefix.

    On the fast path, partitions over the graph's own memoised segment
    chain are memoised per (range, shares, band): the DSE re-prices the
    same handful of share splits against every load bucket, and a
    :class:`DataPartition` is an immutable value.  Callers must treat
    the returned partition (and its tiles) as read-only -- all in-repo
    callers copy ``flops_by_class`` before mutating.
    """
    use_memo = fastpath_enabled() and (segments is None or segments is graph.segments())
    if use_memo:
        per_graph = _PARTITIONS.setdefault(graph, OrderedDict())
        key = (tuple(shares), seg_range, band)
        hit = _lru_lookup(per_graph, key)
        if hit is not None:
            return hit
    partition = _make_data_partition_from_shares(graph, shares, segments, seg_range, band)
    if use_memo:
        _lru_store(per_graph, key, partition, _PARTITIONS_MAX)
    return partition


#: Per-graph memo of assembled partitions (fast path only; see
#: :func:`make_data_partition_from_shares`).
_PARTITIONS: "WeakKeyDictionary[DNNGraph, OrderedDict]" = WeakKeyDictionary()
_PARTITIONS_MAX = 2048


def _make_data_partition_from_shares(
    graph: DNNGraph,
    shares: Sequence[float],
    segments: Optional[Sequence[Segment]] = None,
    seg_range: Optional[Tuple[int, int]] = None,
    band: Optional[Tuple[int, int]] = None,
) -> DataPartition:
    segs = segments if segments is not None else graph.segments()
    lo, hi = seg_range if seg_range is not None else (0, len(segs) - 1)
    prefix_lo, prefix_hi = spatial_prefix(graph, segs, (lo, hi))
    if prefix_hi < prefix_lo:
        raise PartitionError(f"{graph.name}: segment range [{lo},{hi}] has no spatial prefix")
    prefix_segs = segs[prefix_lo : prefix_hi + 1]
    prefix_end = prefix_segs[-1].layer_names[-1]
    entry_layer = _entry_layer(graph, segs, lo)
    out_spec = graph.spec(prefix_end)
    if band is None:
        band = (0, out_spec.height)
    band_lo_limit, band_hi_limit = band
    if not 0 <= band_lo_limit < band_hi_limit <= out_spec.height:
        raise PartitionError(f"invalid band {band} for height {out_spec.height}")
    bands = [
        (band_lo_limit + b_lo, band_lo_limit + b_hi)
        for b_lo, b_hi in rows_from_shares(band_hi_limit - band_lo_limit, shares)
    ]
    # The vectorized tile pricing caches per-layer arrays and per-band
    # results on the graph; range indices are only meaningful against
    # the graph's own memoised chain, hence the identity check.
    use_fast = fastpath_enabled() and segs is graph.segments()
    if not use_fast:
        prefix_layer_names = [name for seg in prefix_segs for name in seg.layer_names]
        layer_set = set(prefix_layer_names) | {entry_layer}

    tiles: List[TileSpec] = []
    for index, (band_lo, band_hi) in enumerate(bands):
        if use_fast:
            flops, by_class, in_lo, in_hi = _tile_costs_fast(
                graph, segs, prefix_lo, prefix_hi, prefix_end, entry_layer, band_lo, band_hi
            )
        else:
            demands = graph.demand_rows(prefix_end, band_lo, band_hi, stop_layer=entry_layer)
            flops = 0
            by_class = {cls: 0 for cls in LAYER_CLASSES}
            for name in prefix_layer_names:
                if name not in demands:
                    continue
                rows_lo, rows_hi = graph.clamp_rows(name, demands[name])
                height = graph.spec(name).height
                share = (rows_hi - rows_lo) / height
                layer_flops = int(round(graph.layer_flops(name) * share))
                flops += layer_flops
                cls = graph.layer(name).layer_class
                by_class[cls] = by_class.get(cls, 0) + layer_flops
            missing = [n for n in demands if n not in layer_set]
            if missing:
                raise PartitionError(
                    f"{graph.name}: demand walk escaped the segment range via {missing[:3]}"
                )
            in_lo, in_hi = graph.clamp_rows(entry_layer, demands[entry_layer])
        entry_spec = graph.spec(entry_layer)
        tiles.append(
            TileSpec(
                index=index,
                out_lo=band_lo,
                out_hi=band_hi,
                in_lo=in_lo,
                in_hi=in_hi,
                flops=flops,
                flops_by_class=by_class,
                input_bytes=entry_spec.rows_bytes(in_hi - in_lo),
                output_bytes=out_spec.rows_bytes(band_hi - band_lo),
            )
        )

    include_tail = band == (0, out_spec.height)
    tail_segs = segs[prefix_hi + 1 : hi + 1] if include_tail else []
    tail_by_class = {cls: 0 for cls in LAYER_CLASSES}
    for seg in tail_segs:
        for cls, flops in seg.flops_by_class.items():
            tail_by_class[cls] = tail_by_class.get(cls, 0) + flops
    tail_flops = sum(seg.flops for seg in tail_segs)
    band_fraction = (band_hi_limit - band_lo_limit) / out_spec.height
    base = int(sum(seg.flops for seg in prefix_segs) * band_fraction) + tail_flops
    return DataPartition(
        graph_name=graph.name,
        seg_lo=lo,
        seg_hi=hi,
        prefix_end=prefix_end,
        entry_layer=entry_layer,
        tiles=tuple(tiles),
        tail_flops=tail_flops,
        tail_flops_by_class=tail_by_class,
        prefix_out_spec=out_spec,
        _base_flops=base,
    )


def make_data_partition(
    graph: DNNGraph,
    num_tiles: int,
    segments: Optional[Sequence[Segment]] = None,
    seg_range: Optional[Tuple[int, int]] = None,
) -> DataPartition:
    """Even σ-way data split of a segment range."""
    return make_data_partition_from_shares(
        graph, even_shares(num_tiles), segments=segments, seg_range=seg_range
    )


#: Per-graph caches for the vectorized tile pricing.  Keys are ranges
#: into the graph's memoised segment chain, so entries stay valid for
#: the graph's lifetime; weak keys let throwaway graphs be collected
#: and the per-graph LRU bounds keep long-lived serving processes from
#: accumulating bands indefinitely.
_PREFIX_ARRAYS: "WeakKeyDictionary[DNNGraph, OrderedDict]" = WeakKeyDictionary()
_PREFIX_ARRAYS_MAX = 128
_TILE_COSTS: "WeakKeyDictionary[DNNGraph, OrderedDict]" = WeakKeyDictionary()
_TILE_COSTS_MAX = 4096


def clear_partition_memos() -> None:
    """Drop the module-level partition memos (assembled partitions,
    per-layer arrays, tile costs).  Benchmarks call this between
    measurements so a warmed memo from one configuration cannot
    subsidise another."""
    _PARTITIONS.clear()
    _PREFIX_ARRAYS.clear()
    _TILE_COSTS.clear()


def _lru_lookup(per_graph: "OrderedDict", key):
    entry = per_graph.get(key)
    if entry is not None:
        per_graph.move_to_end(key)
    return entry


def _lru_store(per_graph: "OrderedDict", key, entry, max_entries: int) -> None:
    per_graph[key] = entry
    if len(per_graph) > max_entries:
        per_graph.popitem(last=False)


def _prefix_arrays(graph: DNNGraph, segs: Sequence[Segment], prefix_lo: int, prefix_hi: int):
    """Cached per-layer (names, heights, flops, class codes) arrays for
    the layers of segments ``[prefix_lo..prefix_hi]``."""
    per_graph = _PREFIX_ARRAYS.setdefault(graph, OrderedDict())
    key = (prefix_lo, prefix_hi)
    entry = _lru_lookup(per_graph, key)
    if entry is None:
        names = tuple(
            name for seg in segs[prefix_lo : prefix_hi + 1] for name in seg.layer_names
        )
        heights = np.array([graph.spec(name).height for name in names], dtype=np.int64)
        layer_flops = np.array([graph.layer_flops(name) for name in names], dtype=np.float64)
        class_code = {cls: code for code, cls in enumerate(LAYER_CLASSES)}
        codes = np.array(
            [class_code[graph.layer(name).layer_class] for name in names], dtype=np.int64
        )
        entry = (names, frozenset(names), heights, layer_flops, codes)
        _lru_store(per_graph, key, entry, _PREFIX_ARRAYS_MAX)
    return entry


def _tile_costs_fast(
    graph: DNNGraph,
    segs: Sequence[Segment],
    prefix_lo: int,
    prefix_hi: int,
    prefix_end: str,
    entry_layer: str,
    band_lo: int,
    band_hi: int,
) -> Tuple[int, Dict[str, int], int, int]:
    """Vectorized halo-inflated tile pricing: (flops, by_class, in_lo, in_hi).

    Numerically identical to the per-layer Python loop: the same clamp
    / ``share = rows / height`` / round-half-even arithmetic runs on
    float64 arrays, and all accumulations are exact integer sums.
    Results are memoised per (range, band) on the graph.
    """
    cache = _TILE_COSTS.setdefault(graph, OrderedDict())
    key = (prefix_lo, prefix_hi, entry_layer, band_lo, band_hi)
    hit = _lru_lookup(cache, key)
    if hit is not None:
        flops, by_class, in_lo, in_hi = hit
        return flops, dict(by_class), in_lo, in_hi
    names, names_set, heights, layer_flops, codes = _prefix_arrays(
        graph, segs, prefix_lo, prefix_hi
    )
    demands = graph.demand_rows(prefix_end, band_lo, band_hi, stop_layer=entry_layer)
    rows_lo = np.zeros(len(names), dtype=np.int64)
    rows_hi = np.zeros(len(names), dtype=np.int64)
    for idx, name in enumerate(names):
        demand = demands.get(name)
        if demand is not None:  # absent layers keep a zero-row (no-op) range
            rows_lo[idx] = demand[0]
            rows_hi[idx] = demand[1]
    missing = [n for n in demands if n not in names_set and n != entry_layer]
    if missing:
        raise PartitionError(
            f"{graph.name}: demand walk escaped the segment range via {missing[:3]}"
        )
    clamped_lo = np.maximum(rows_lo, 0)
    clamped_hi = np.minimum(rows_hi, heights)
    share = (clamped_hi - clamped_lo) / heights
    tile_flops = np.rint(layer_flops * share).astype(np.int64)
    flops = int(tile_flops.sum())
    per_class = np.bincount(codes, weights=tile_flops, minlength=len(LAYER_CLASSES))
    by_class = {cls: int(per_class[code]) for code, cls in enumerate(LAYER_CLASSES)}
    in_lo, in_hi = graph.clamp_rows(entry_layer, demands[entry_layer])
    _lru_store(cache, key, (flops, by_class, in_lo, in_hi), _TILE_COSTS_MAX)
    return flops, dict(by_class), in_lo, in_hi


def _entry_layer(graph: DNNGraph, segments: Sequence[Segment], seg_lo: int) -> str:
    """The cut-tensor layer feeding segment ``seg_lo``."""
    if seg_lo == 0:
        return graph.layers[0].name
    return segments[seg_lo - 1].layer_names[-1]


def max_useful_tiles(graph: DNNGraph, seg_range: Optional[Tuple[int, int]] = None) -> int:
    """Upper bound on tile count: rows of the spatial prefix output."""
    segs = graph.segments()
    lo, hi = seg_range if seg_range is not None else (0, len(segs) - 1)
    prefix_lo, prefix_hi = spatial_prefix(graph, segs, (lo, hi))
    if prefix_hi < prefix_lo:
        return 1
    prefix_end = segs[prefix_hi].layer_names[-1]
    return graph.spec(prefix_end).height

"""Analytical layer cost model.

Every layer knows, given its input :class:`~repro.dnn.tensors.TensorSpec`:

- its output spec (shape propagation),
- its FLOP count (we count one multiply-accumulate as **2 FLOPs**,
  matching the convention of the paper's Gigaflops/s plots),
- its parameter (weights) footprint in bytes,
- its *layer class* -- the key used by processors to look up the
  compute intensity ``delta`` (cycles/FLOP) of the paper's system model,
- its spatial receptive-field geometry (kernel/stride/padding), used by
  the data partitioner to compute halo (overlap) regions exactly.

The geometry is intentionally restricted to what the four evaluated
networks need: 2-D convolution, depthwise convolution, pooling, global
pooling, flatten, dense, activation, batch-norm, residual add, branch
concat and softmax.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.dnn.tensors import TensorSpec, vector

# Layer classes drive the per-processor compute-intensity table.  The
# distinction between "conv" and "depthwise" is what lets the model
# reproduce the paper's Fig. 1 shape: depthwise convolutions have very
# low arithmetic intensity and utilise a GPU poorly, which is why
# EfficientNet-B0 profits most from CPU+GPU splits.
CLASS_CONV = "conv"
CLASS_DEPTHWISE = "depthwise"
CLASS_DENSE = "dense"
CLASS_POOL = "pool"
CLASS_ELEMENTWISE = "elementwise"

LAYER_CLASSES = (CLASS_CONV, CLASS_DEPTHWISE, CLASS_DENSE, CLASS_POOL, CLASS_ELEMENTWISE)


def _conv_out(size: int, kernel: int, stride: int, padding: str) -> int:
    """Output spatial size of a conv/pool along one dimension."""
    if padding == "same":
        return math.ceil(size / stride)
    if padding == "valid":
        if size < kernel:
            raise ValueError(f"input {size} smaller than kernel {kernel} with valid padding")
        return (size - kernel) // stride + 1
    raise ValueError(f"unknown padding mode: {padding!r}")


def _pad_amount(size: int, kernel: int, stride: int, padding: str) -> Tuple[int, int]:
    """(pad_before, pad_after) along one dimension, TF 'same' semantics."""
    if padding == "valid":
        return 0, 0
    out = _conv_out(size, kernel, stride, padding)
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    ``name`` must be unique within a graph.  ``inputs`` lists the names
    of producer layers; the builder helpers in :mod:`repro.dnn.graph`
    fill it in automatically for sequential chains.
    """

    name: str
    inputs: Tuple[str, ...] = field(default=(), kw_only=True)

    #: Layer class for compute-intensity lookup.
    layer_class: str = field(default=CLASS_ELEMENTWISE, kw_only=True)

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        """Shape propagation; must be overridden."""
        raise NotImplementedError

    def flops(self, *input_specs: TensorSpec) -> int:
        """FLOP count for one inference through this layer."""
        raise NotImplementedError

    def weight_bytes(self) -> int:
        """Parameter footprint in bytes (0 for stateless layers)."""
        return 0

    # Spatial geometry -------------------------------------------------
    # (kernel, stride, padding) along the height axis; identity by
    # default.  Used to back-propagate row ranges for halo computation.

    @property
    def kernel(self) -> int:
        """Kernel extent along the (tiled) height axis."""
        return 1

    @property
    def kernel_w(self) -> int:
        """Kernel extent along the width axis (never tiled)."""
        return self.kernel

    @property
    def stride(self) -> int:
        return 1

    @property
    def padding(self) -> str:
        return "same"

    @property
    def is_spatial(self) -> bool:
        """Whether the layer preserves a meaningful spatial dimension."""
        return True


@dataclass(frozen=True)
class Input(Layer):
    """Graph entry point carrying the input image spec."""

    spec: TensorSpec = field(default=TensorSpec(224, 224, 3))

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        return self.spec

    def flops(self, *input_specs: TensorSpec) -> int:
        return 0


@dataclass(frozen=True)
class Conv2D(Layer):
    """Standard 2-D convolution (optionally grouped).

    ``kernel_size`` may be an int (square) or an ``(kh, kw)`` tuple, the
    latter modelling Inception-style factorised 1x7 / 7x1 convolutions.
    """

    filters: int = 64
    kernel_size: "int | Tuple[int, int]" = 3
    strides: int = 1
    pad: str = "same"
    groups: int = 1
    use_bias: bool = True
    activation: str = "relu"

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_class", CLASS_CONV)
        if self.filters < 1 or self.kernel < 1 or self.kernel_w < 1:
            raise ValueError(f"invalid conv parameters: {self}")
        if self.strides < 1 or self.groups < 1:
            raise ValueError(f"invalid conv parameters: {self}")

    @property
    def kernel(self) -> int:
        if isinstance(self.kernel_size, tuple):
            return self.kernel_size[0]
        return self.kernel_size

    @property
    def kernel_w(self) -> int:
        if isinstance(self.kernel_size, tuple):
            return self.kernel_size[1]
        return self.kernel_size

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        if spec.channels % self.groups:
            raise ValueError(
                f"{self.name}: input channels {spec.channels} not divisible by groups {self.groups}"
            )
        return TensorSpec(
            height=_conv_out(spec.height, self.kernel, self.strides, self.pad),
            width=_conv_out(spec.width, self.kernel_w, self.strides, self.pad),
            channels=self.filters,
            dtype_bytes=spec.dtype_bytes,
        )

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        out = self.output_spec(spec)
        in_per_group = spec.channels // self.groups
        macs = out.height * out.width * self.filters * in_per_group * self.kernel * self.kernel_w
        return 2 * macs

    def weight_bytes_for(self, spec: TensorSpec) -> int:
        in_per_group = spec.channels // self.groups
        weights = self.filters * in_per_group * self.kernel * self.kernel_w
        bias = self.filters if self.use_bias else 0
        return (weights + bias) * spec.dtype_bytes

    @property
    def stride(self) -> int:
        return self.strides

    @property
    def padding(self) -> str:
        return self.pad


@dataclass(frozen=True)
class DepthwiseConv2D(Layer):
    """Depthwise (per-channel) convolution, the MBConv workhorse."""

    kernel_size: int = 3
    strides: int = 1
    pad: str = "same"
    use_bias: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_class", CLASS_DEPTHWISE)
        if self.kernel_size < 1 or self.strides < 1:
            raise ValueError(f"invalid depthwise parameters: {self}")

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return TensorSpec(
            height=_conv_out(spec.height, self.kernel_size, self.strides, self.pad),
            width=_conv_out(spec.width, self.kernel_size, self.strides, self.pad),
            channels=spec.channels,
            dtype_bytes=spec.dtype_bytes,
        )

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        out = self.output_spec(spec)
        macs = out.height * out.width * spec.channels * self.kernel_size ** 2
        return 2 * macs

    def weight_bytes_for(self, spec: TensorSpec) -> int:
        weights = spec.channels * self.kernel_size ** 2
        bias = spec.channels if self.use_bias else 0
        return (weights + bias) * spec.dtype_bytes

    @property
    def kernel(self) -> int:
        return self.kernel_size

    @property
    def stride(self) -> int:
        return self.strides

    @property
    def padding(self) -> str:
        return self.pad


@dataclass(frozen=True)
class Pool2D(Layer):
    """Max or average pooling."""

    pool_size: int = 2
    strides: int = 2
    pad: str = "valid"
    mode: str = "max"

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_class", CLASS_POOL)
        if self.mode not in ("max", "avg"):
            raise ValueError(f"unknown pooling mode: {self.mode!r}")

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return TensorSpec(
            height=_conv_out(spec.height, self.pool_size, self.strides, self.pad),
            width=_conv_out(spec.width, self.pool_size, self.strides, self.pad),
            channels=spec.channels,
            dtype_bytes=spec.dtype_bytes,
        )

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        out = self.output_spec(spec)
        return out.numel * self.pool_size ** 2

    @property
    def kernel(self) -> int:
        return self.pool_size

    @property
    def stride(self) -> int:
        return self.strides

    @property
    def padding(self) -> str:
        return self.pad


@dataclass(frozen=True)
class GlobalAvgPool(Layer):
    """Spatial global average pooling; collapses H and W."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_class", CLASS_POOL)

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return vector(spec.channels, spec.dtype_bytes)

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        return spec.numel

    @property
    def is_spatial(self) -> bool:
        return False


@dataclass(frozen=True)
class Flatten(Layer):
    """Reshape a spatial tensor into a vector."""

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return vector(spec.numel, spec.dtype_bytes)

    def flops(self, *input_specs: TensorSpec) -> int:
        return 0

    @property
    def is_spatial(self) -> bool:
        return False


@dataclass(frozen=True)
class Dense(Layer):
    """Fully-connected layer."""

    units: int = 1000
    use_bias: bool = True
    activation: str = "relu"

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_class", CLASS_DENSE)
        if self.units < 1:
            raise ValueError(f"invalid dense units: {self.units}")

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return vector(self.units, spec.dtype_bytes)

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        return 2 * spec.numel * self.units

    def weight_bytes_for(self, spec: TensorSpec) -> int:
        weights = spec.numel * self.units
        bias = self.units if self.use_bias else 0
        return (weights + bias) * spec.dtype_bytes

    @property
    def is_spatial(self) -> bool:
        return False


@dataclass(frozen=True)
class Activation(Layer):
    """Standalone activation (ReLU/swish/sigmoid...)."""

    fn: str = "relu"

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return spec

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        return spec.numel


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Inference-time batch normalisation (scale + shift)."""

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return spec

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        return 2 * spec.numel

    def weight_bytes_for(self, spec: TensorSpec) -> int:
        return 4 * spec.channels * spec.dtype_bytes


@dataclass(frozen=True)
class Add(Layer):
    """Elementwise residual addition of two equal-shaped tensors."""

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        first = input_specs[0]
        for other in input_specs[1:]:
            if (other.height, other.width, other.channels) != (
                first.height,
                first.width,
                first.channels,
            ):
                raise ValueError(f"{self.name}: mismatched Add inputs {first} vs {other}")
        return first

    def flops(self, *input_specs: TensorSpec) -> int:
        return input_specs[0].numel * (len(input_specs) - 1)


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation of branch outputs."""

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        first = input_specs[0]
        for other in input_specs[1:]:
            if (other.height, other.width) != (first.height, first.width):
                raise ValueError(f"{self.name}: mismatched Concat inputs {first} vs {other}")
        channels = sum(spec.channels for spec in input_specs)
        return TensorSpec(first.height, first.width, channels, first.dtype_bytes)

    def flops(self, *input_specs: TensorSpec) -> int:
        return 0


@dataclass(frozen=True)
class Softmax(Layer):
    """Final classifier normalisation."""

    def output_spec(self, *input_specs: TensorSpec) -> TensorSpec:
        (spec,) = input_specs
        return spec

    def flops(self, *input_specs: TensorSpec) -> int:
        (spec,) = input_specs
        return 5 * spec.numel

    @property
    def is_spatial(self) -> bool:
        return False


def receptive_rows(layers: Sequence[Layer], out_lo: int, out_hi: int) -> Tuple[int, int]:
    """Input row range needed to produce output rows ``[out_lo, out_hi)``.

    Walks a *sequential* chain of spatial layers backwards applying the
    standard receptive-field recurrence ``in = out*stride`` ...
    ``in_hi = (out_hi-1)*stride + kernel``.  Padding is handled by the
    caller clamping to the actual input height.  This is the exact halo
    computation used by Fused-Tile-Partitioning style data splits.
    """
    lo, hi = out_lo, out_hi
    for layer in reversed(list(layers)):
        lo = lo * layer.stride
        hi = (hi - 1) * layer.stride + layer.kernel
        if layer.padding == "same":
            pad = (layer.kernel - 1) // 2
            lo -= pad
            hi -= pad
    return lo, hi

"""DNN graphs as layer DAGs, plus segment (block-candidate) extraction.

The paper's system model treats a DNN as a DAG whose nodes are layers
and whose edges are tensors.  Partitioning operates on *segments*:
maximal runs between single-tensor cut points of the DAG.  A cut point
is a position in the topological order where exactly one live tensor
crosses -- cutting there turns the network into two sub-networks that
communicate a single activation, which is what model partitioning
ships between devices.

Branchy regions (Inception modules, residual bottlenecks) never contain
a cut point inside them, so segments absorb whole modules; this gives
the "heterogeneous block size" property of Table I for free.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dnn.layers import Input, Layer, LAYER_CLASSES, _pad_amount
from repro.dnn.tensors import TensorSpec


def _same_pad_height(producer_spec: TensorSpec, layer: Layer) -> Tuple[int, int]:
    """TF-style 'same' (pad_before, pad_after) along height for ``layer``."""
    return _pad_amount(producer_spec.height, layer.kernel, layer.stride, "same")


class GraphError(ValueError):
    """Raised for malformed layer graphs."""


@dataclass(frozen=True)
class Segment:
    """A contiguous partition candidate between two cut points.

    ``index`` is the segment position in the chain; ``in_spec`` is the
    tensor entering the segment (the previous cut tensor) and
    ``out_spec`` the tensor leaving it.  ``flops_by_class`` drives the
    heterogeneity-aware cost model.
    """

    index: int
    name: str
    layer_names: Tuple[str, ...]
    in_spec: TensorSpec
    out_spec: TensorSpec
    flops: int
    flops_by_class: Dict[str, int]
    weight_bytes: int
    spatial: bool

    @property
    def out_bytes(self) -> int:
        return self.out_spec.size_bytes

    @property
    def in_bytes(self) -> int:
        return self.in_spec.size_bytes

    @property
    def num_ops(self) -> int:
        """Operator count -- drives per-op dispatch cost on processors."""
        return len(self.layer_names)


class DNNGraph:
    """An immutable, validated DNN layer DAG with cached cost data."""

    def __init__(self, name: str, layers: Sequence[Layer]):
        if not layers:
            raise GraphError("empty graph")
        self.name = name
        self.layers: Tuple[Layer, ...] = tuple(layers)
        self._by_name: Dict[str, Layer] = {}
        for layer in self.layers:
            if layer.name in self._by_name:
                raise GraphError(f"duplicate layer name: {layer.name}")
            self._by_name[layer.name] = layer
        if not isinstance(self.layers[0], Input):
            raise GraphError("first layer must be an Input")
        if self.layers[0].inputs:
            raise GraphError("Input layer cannot have producers")
        self._validate_topology()
        self._specs: Dict[str, TensorSpec] = {}
        self._flops: Dict[str, int] = {}
        self._weights: Dict[str, int] = {}
        self._propagate()
        self._consumers: Dict[str, List[str]] = {layer.name: [] for layer in self.layers}
        for layer in self.layers:
            for producer in layer.inputs:
                self._consumers[producer].append(layer.name)
        # Plan-level caches: the graph is immutable, so segment
        # extraction, the prefix-sum cost table and demand walks are
        # computed once and shared by every planning pass.  The demand
        # memo is LRU-bounded: long-lived serving processes replan the
        # same graph under ever-changing loads/bands.
        self._segments_cache: Optional[Tuple[Segment, ...]] = None
        self._segment_table = None
        self._demand_cache: "OrderedDict[Tuple[str, int, int, Optional[str]], Dict[str, Tuple[int, int]]]" = (
            OrderedDict()
        )

    # Construction helpers ---------------------------------------------

    def _validate_topology(self) -> None:
        seen = set()
        for layer in self.layers:
            for producer in layer.inputs:
                if producer not in self._by_name:
                    raise GraphError(f"{layer.name}: unknown producer {producer!r}")
                if producer not in seen:
                    raise GraphError(
                        f"{layer.name}: producer {producer!r} appears later in the layer order"
                    )
            if layer.inputs == () and not isinstance(layer, Input):
                raise GraphError(f"{layer.name}: non-input layer without producers")
            seen.add(layer.name)

    def _propagate(self) -> None:
        for layer in self.layers:
            in_specs = tuple(self._specs[p] for p in layer.inputs)
            try:
                spec = layer.output_spec(*in_specs)
            except (TypeError, ValueError) as exc:
                raise GraphError(f"shape propagation failed at {layer.name}: {exc}") from exc
            self._specs[layer.name] = spec
            self._flops[layer.name] = layer.flops(*in_specs) if in_specs else 0
            weight_fn = getattr(layer, "weight_bytes_for", None)
            if weight_fn is not None and in_specs:
                self._weights[layer.name] = weight_fn(in_specs[0])
            else:
                self._weights[layer.name] = layer.weight_bytes()

    # Accessors ----------------------------------------------------------

    def layer(self, name: str) -> Layer:
        return self._by_name[name]

    def spec(self, name: str) -> TensorSpec:
        """Output tensor spec of a layer."""
        return self._specs[name]

    def layer_flops(self, name: str) -> int:
        return self._flops[name]

    def consumers(self, name: str) -> Tuple[str, ...]:
        return tuple(self._consumers[name])

    @property
    def input_spec(self) -> TensorSpec:
        return self._specs[self.layers[0].name]

    @property
    def output_spec(self) -> TensorSpec:
        return self._specs[self.layers[-1].name]

    @property
    def total_flops(self) -> int:
        return sum(self._flops.values())

    @property
    def total_weight_bytes(self) -> int:
        return sum(self._weights.values())

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def flops_by_class(self, layer_names: Iterable[str] = ()) -> Dict[str, int]:
        """FLOPs broken down by layer class, for the given layers (default all)."""
        names = tuple(layer_names) or tuple(layer.name for layer in self.layers)
        breakdown = {cls: 0 for cls in LAYER_CLASSES}
        for name in names:
            layer = self._by_name[name]
            breakdown[layer.layer_class] = breakdown.get(layer.layer_class, 0) + self._flops[name]
        return breakdown

    # Cut points & segments ----------------------------------------------

    def cut_points(self) -> List[int]:
        """Indices ``i`` such that only ``layers[i]``'s tensor crosses to ``layers[>i]``.

        The Input layer (index 0) is always a cut point; the final layer
        is a cut point by convention (the network output).
        """
        position = {layer.name: idx for idx, layer in enumerate(self.layers)}
        max_consumer = [idx for idx in range(len(self.layers))]
        for layer in self.layers:
            for producer in layer.inputs:
                p = position[producer]
                max_consumer[p] = max(max_consumer[p], position[layer.name])
        cuts = []
        running = -1  # furthest consumer of any layer strictly before idx
        for idx in range(len(self.layers) - 1):
            if running <= idx and max_consumer[idx] > idx:
                cuts.append(idx)
            running = max(running, max_consumer[idx])
        cuts.append(len(self.layers) - 1)
        return cuts

    def segments(self) -> Tuple[Segment, ...]:
        """Partition candidates: maximal layer runs between cut points.

        The chain is computed once and memoised (the graph is
        immutable); callers receive the shared tuple, so repeated
        planning passes pay for segment extraction only once.
        """
        if self._segments_cache is not None:
            return self._segments_cache
        cuts = self.cut_points()
        segments: List[Segment] = []
        for seg_idx in range(len(cuts) - 1):
            lo, hi = cuts[seg_idx], cuts[seg_idx + 1]
            members = self.layers[lo + 1 : hi + 1]
            names = tuple(layer.name for layer in members)
            flops = sum(self._flops[n] for n in names)
            weights = sum(self._weights[n] for n in names)
            in_spec = self._specs[self.layers[lo].name]
            out_spec = self._specs[self.layers[hi].name]
            spatial = (
                in_spec.is_spatial
                and out_spec.is_spatial
                and all(layer.is_spatial for layer in members)
            )
            segments.append(
                Segment(
                    index=seg_idx,
                    name=f"{self.name}/seg{seg_idx}",
                    layer_names=names,
                    in_spec=in_spec,
                    out_spec=out_spec,
                    flops=flops,
                    flops_by_class=self.flops_by_class(names),
                    weight_bytes=weights,
                    spatial=spatial,
                )
            )
        self._segments_cache = tuple(segments)
        return self._segments_cache

    def segment_table(self):
        """Memoised :class:`~repro.dnn.segment_table.SegmentTable` over
        the full segment chain (O(1) range cost queries)."""
        if self._segment_table is None:
            from repro.dnn.segment_table import SegmentTable

            self._segment_table = SegmentTable(self.segments())
        return self._segment_table

    # Halo (receptive field) computation ----------------------------------

    def demand_rows(
        self,
        end_layer: str,
        out_lo: int,
        out_hi: int,
        stop_layer: Optional[str] = None,
    ) -> Dict[str, Tuple[int, int]]:
        """Per-layer *unclamped* row demands to produce ``[out_lo, out_hi)``
        of ``end_layer``'s output.

        Walks the DAG backwards from ``end_layer``; at joins the union
        (min lo / max hi) of all consumers' demands is taken.  Layers
        without spatial meaning demand the full extent of their input.
        Ranges may extend past ``[0, height)`` -- the excess is exactly
        the zero padding a tile executor must apply; clamp with
        :meth:`clamp_rows` when a physical range is needed.

        ``stop_layer`` bounds the walk: its demand is recorded but its
        producers are not visited.  Pass the cut-tensor layer feeding a
        segment range to keep the walk inside the range.

        Walks are memoised on the immutable graph (the DSE re-prices the
        same tile bands across candidate cuts and repeated plans); a
        fresh dict is returned each call so callers may mutate it.
        """
        key = (end_layer, out_lo, out_hi, stop_layer)
        cached = self._demand_cache.get(key)
        if cached is not None:
            self._demand_cache.move_to_end(key)
            return dict(cached)
        if end_layer not in self._by_name:
            raise GraphError(f"unknown layer {end_layer!r}")
        needed: Dict[str, Tuple[int, int]] = {end_layer: (out_lo, out_hi)}
        for layer in reversed(self.layers):
            if layer.name not in needed:
                continue
            if stop_layer is not None and layer.name == stop_layer:
                continue
            lo, hi = needed[layer.name]
            for producer in layer.inputs:
                if layer.is_spatial:
                    p_lo = lo * layer.stride
                    p_hi = (hi - 1) * layer.stride + layer.kernel
                    if layer.padding == "same":
                        pad_before, _ = _same_pad_height(self._specs[producer], layer)
                        p_lo -= pad_before
                        p_hi -= pad_before
                else:
                    producer_spec = self._specs[producer]
                    p_lo, p_hi = 0, producer_spec.height
                prev = needed.get(producer)
                if prev is None:
                    needed[producer] = (p_lo, p_hi)
                else:
                    needed[producer] = (min(prev[0], p_lo), max(prev[1], p_hi))
        self._demand_cache[key] = needed
        if len(self._demand_cache) > self._DEMAND_CACHE_MAX:
            self._demand_cache.popitem(last=False)
        return dict(needed)

    #: Bound on memoised demand walks per graph.
    _DEMAND_CACHE_MAX = 4096

    def clamp_rows(self, layer_name: str, rows: Tuple[int, int]) -> Tuple[int, int]:
        """Clamp a demand range to the layer's physical output height."""
        height = self._specs[layer_name].height
        return max(rows[0], 0), min(rows[1], height)

    def required_input_rows(self, out_lo: int, out_hi: int) -> Tuple[int, int]:
        """Input row range needed for final-output rows ``[out_lo, out_hi)``."""
        needed = self.demand_rows(self.layers[-1].name, out_lo, out_hi)
        return self.clamp_rows(self.layers[0].name, needed[self.layers[0].name])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gflops = self.total_flops / 1e9
        return f"DNNGraph({self.name!r}, layers={self.num_layers}, {gflops:.2f} GFLOPs)"


class GraphBuilder:
    """Convenience builder producing a validated :class:`DNNGraph`.

    Sequential ``add`` wires each layer to the previous one unless the
    layer already declares explicit ``inputs``.
    """

    def __init__(self, name: str, input_spec: TensorSpec):
        self._name = name
        self._layers: List[Layer] = [Input(name="input", spec=input_spec)]
        self._last = "input"
        self._counter: Dict[str, int] = {}

    def unique(self, prefix: str) -> str:
        """Generate a unique layer name with the given prefix."""
        count = self._counter.get(prefix, 0)
        self._counter[prefix] = count + 1
        return f"{prefix}_{count}" if count else prefix

    def add(self, layer: Layer, *, after: str | Sequence[str] | None = None) -> str:
        """Append ``layer``; wire to ``after`` (default: previous layer)."""
        if layer.inputs:
            wired = layer
        else:
            if after is None:
                producers: Tuple[str, ...] = (self._last,)
            elif isinstance(after, str):
                producers = (after,)
            else:
                producers = tuple(after)
            wired = _with_inputs(layer, producers)
        if wired.name in {existing.name for existing in self._layers}:
            raise GraphError(f"duplicate layer name: {wired.name}")
        self._layers.append(wired)
        self._last = wired.name
        return wired.name

    @property
    def last(self) -> str:
        return self._last

    def build(self) -> DNNGraph:
        return DNNGraph(self._name, self._layers)


def _with_inputs(layer: Layer, producers: Tuple[str, ...]) -> Layer:
    """A copy of ``layer`` wired to the given producers."""
    import dataclasses

    return dataclasses.replace(layer, inputs=producers)

"""Prefix-sum cost tables over segment chains.

Every DSE kernel repeatedly prices contiguous segment ranges
``[lo..hi]``: per-layer-class FLOPs, operator counts, boundary tensor
sizes.  The seed implementation rescanned the segment list for every
candidate cut, making ``explore_data`` O(cuts * segments) before the
share DP even ran.  A :class:`SegmentTable` precomputes the prefix sums
once -- all sums are exact Python ints, so range queries are
byte-identical to the rescans they replace -- and answers any range
query in O(num_layer_classes).

Tables are cheap to build (one pass over the chain) and immutable;
:meth:`repro.dnn.graph.DNNGraph.segment_table` memoises the full-graph
table on the (immutable) graph so repeated planning passes share it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dnn.graph import Segment
from repro.dnn.layers import LAYER_CLASSES


class SegmentTable:
    """O(1) range cost queries over a fixed segment chain.

    Ranges are inclusive ``[lo, hi]`` indices into ``segments`` (the
    same convention every DSE helper uses); an empty range (``hi < lo``)
    prices to zero.
    """

    __slots__ = (
        "segments",
        "_flops_prefix",
        "_total_prefix",
        "_ops_prefix",
        "_next_nonspatial",
        "_slices",
    )

    def __init__(self, segments: Sequence[Segment]):
        self.segments: Tuple[Segment, ...] = tuple(segments)
        n = len(self.segments)
        flops_prefix: Dict[str, List[int]] = {cls: [0] * (n + 1) for cls in LAYER_CLASSES}
        total_prefix = [0] * (n + 1)
        ops_prefix = [0] * (n + 1)
        for idx, seg in enumerate(self.segments):
            for cls in LAYER_CLASSES:
                flops_prefix[cls][idx + 1] = flops_prefix[cls][idx] + seg.flops_by_class.get(
                    cls, 0
                )
            total_prefix[idx + 1] = total_prefix[idx] + seg.flops
            ops_prefix[idx + 1] = ops_prefix[idx] + seg.num_ops
        self._flops_prefix = flops_prefix
        self._total_prefix = total_prefix
        self._ops_prefix = ops_prefix
        # _next_nonspatial[i]: smallest j >= i with a non-spatial segment
        # (n when the rest of the chain is spatial) -- O(1) spatial-prefix.
        next_nonspatial = [n] * (n + 1)
        for idx in range(n - 1, -1, -1):
            next_nonspatial[idx] = idx if not self.segments[idx].spatial else next_nonspatial[idx + 1]
        self._next_nonspatial = next_nonspatial
        self._slices: Dict[Tuple[int, int], Tuple[Segment, ...]] = {}

    def __len__(self) -> int:
        return len(self.segments)

    def _check(self, lo: int, hi: int) -> None:
        if lo < 0 or hi >= len(self.segments):
            raise IndexError(
                f"segment range [{lo}, {hi}] outside chain of {len(self.segments)}"
            )

    def range_flops(self, lo: int, hi: int) -> Dict[str, int]:
        """FLOPs of ``[lo..hi]`` broken down by layer class (zeros kept,
        :data:`LAYER_CLASSES` order -- the exact dict the rescans built)."""
        if hi < lo:
            return {cls: 0 for cls in LAYER_CLASSES}
        self._check(lo, hi)
        return {cls: self._flops_prefix[cls][hi + 1] - self._flops_prefix[cls][lo]
                for cls in LAYER_CLASSES}

    def range_flops_total(self, lo: int, hi: int) -> int:
        """Total FLOPs of ``[lo..hi]`` across all classes."""
        if hi < lo:
            return 0
        self._check(lo, hi)
        return self._total_prefix[hi + 1] - self._total_prefix[lo]

    def range_ops(self, lo: int, hi: int) -> int:
        """Operator count of ``[lo..hi]`` (drives dispatch cost)."""
        if hi < lo:
            return 0
        self._check(lo, hi)
        return self._ops_prefix[hi + 1] - self._ops_prefix[lo]

    def in_bytes(self, idx: int) -> int:
        """Bytes of the tensor entering segment ``idx``."""
        return self.segments[idx].in_spec.size_bytes

    def out_bytes(self, idx: int) -> int:
        """Bytes of the tensor leaving segment ``idx``."""
        return self.segments[idx].out_spec.size_bytes

    def spatial_prefix_end(self, lo: int, hi: int) -> int:
        """Last index ``p`` of the spatial run starting at ``lo`` within
        ``[lo..hi]``; ``p < lo`` means segment ``lo`` is non-spatial."""
        self._check(lo, hi if hi >= lo else lo)
        return min(self._next_nonspatial[lo], hi + 1) - 1

    def chain_slice(self, lo: int, hi: int) -> Tuple[Segment, ...]:
        """Memoised sub-chain ``segments[lo..hi]``.

        Returning the same tuple object per range lets identity-keyed
        memos downstream (e.g. span coarsening) hit across plans.
        """
        self._check(lo, hi)
        key = (lo, hi)
        cached = self._slices.get(key)
        if cached is None:
            cached = self.segments[lo : hi + 1]
            self._slices[key] = cached
        return cached

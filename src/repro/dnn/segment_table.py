"""Prefix-sum cost tables over segment chains.

Every DSE kernel repeatedly prices contiguous segment ranges
``[lo..hi]``: per-layer-class FLOPs, operator counts, boundary tensor
sizes.  The seed implementation rescanned the segment list for every
candidate cut, making ``explore_data`` O(cuts * segments) before the
share DP even ran.  A :class:`SegmentTable` precomputes the prefix sums
once -- all sums are exact Python ints, so range queries are
byte-identical to the rescans they replace -- and answers any range
query in O(num_layer_classes).

Tables are cheap to build (one pass over the chain) and immutable;
:meth:`repro.dnn.graph.DNNGraph.segment_table` memoises the full-graph
table on the (immutable) graph so repeated planning passes share it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.dnn.graph import Segment
from repro.dnn.layers import LAYER_CLASSES

#: One structural token of a :meth:`SegmentTable.signature`:
#: (dominant layer class, spatial flag, FLOPs magnitude bucket).
SignatureToken = Tuple[str, bool, int]


def jaccard_similarity(a: FrozenSet, b: FrozenSet) -> float:
    """Jaccard similarity ``|a & b| / |a | b|`` between two signatures.

    Two empty signatures count as identical (1.0); an empty signature
    against a non-empty one scores 0.0.  Used by the serving
    specialization layer to cluster models by plan structure -- cheap
    (set arithmetic over small token sets) and symmetric.
    """
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


class SegmentTable:
    """O(1) range cost queries over a fixed segment chain.

    Ranges are inclusive ``[lo, hi]`` indices into ``segments`` (the
    same convention every DSE helper uses); an empty range (``hi < lo``)
    prices to zero.
    """

    __slots__ = (
        "segments",
        "_flops_prefix",
        "_total_prefix",
        "_ops_prefix",
        "_next_nonspatial",
        "_slices",
        "_signature",
    )

    def __init__(self, segments: Sequence[Segment]):
        self.segments: Tuple[Segment, ...] = tuple(segments)
        n = len(self.segments)
        flops_prefix: Dict[str, List[int]] = {cls: [0] * (n + 1) for cls in LAYER_CLASSES}
        total_prefix = [0] * (n + 1)
        ops_prefix = [0] * (n + 1)
        for idx, seg in enumerate(self.segments):
            for cls in LAYER_CLASSES:
                flops_prefix[cls][idx + 1] = flops_prefix[cls][idx] + seg.flops_by_class.get(
                    cls, 0
                )
            total_prefix[idx + 1] = total_prefix[idx] + seg.flops
            ops_prefix[idx + 1] = ops_prefix[idx] + seg.num_ops
        self._flops_prefix = flops_prefix
        self._total_prefix = total_prefix
        self._ops_prefix = ops_prefix
        # _next_nonspatial[i]: smallest j >= i with a non-spatial segment
        # (n when the rest of the chain is spatial) -- O(1) spatial-prefix.
        next_nonspatial = [n] * (n + 1)
        for idx in range(n - 1, -1, -1):
            next_nonspatial[idx] = idx if not self.segments[idx].spatial else next_nonspatial[idx + 1]
        self._next_nonspatial = next_nonspatial
        self._slices: Dict[Tuple[int, int], Tuple[Segment, ...]] = {}
        self._signature: FrozenSet[SignatureToken] = None

    def __len__(self) -> int:
        return len(self.segments)

    def _check(self, lo: int, hi: int) -> None:
        if lo < 0 or hi >= len(self.segments):
            raise IndexError(
                f"segment range [{lo}, {hi}] outside chain of {len(self.segments)}"
            )

    def range_flops(self, lo: int, hi: int) -> Dict[str, int]:
        """FLOPs of ``[lo..hi]`` broken down by layer class (zeros kept,
        :data:`LAYER_CLASSES` order -- the exact dict the rescans built)."""
        if hi < lo:
            return {cls: 0 for cls in LAYER_CLASSES}
        self._check(lo, hi)
        return {cls: self._flops_prefix[cls][hi + 1] - self._flops_prefix[cls][lo]
                for cls in LAYER_CLASSES}

    def range_flops_total(self, lo: int, hi: int) -> int:
        """Total FLOPs of ``[lo..hi]`` across all classes."""
        if hi < lo:
            return 0
        self._check(lo, hi)
        return self._total_prefix[hi + 1] - self._total_prefix[lo]

    def range_ops(self, lo: int, hi: int) -> int:
        """Operator count of ``[lo..hi]`` (drives dispatch cost)."""
        if hi < lo:
            return 0
        self._check(lo, hi)
        return self._ops_prefix[hi + 1] - self._ops_prefix[lo]

    def in_bytes(self, idx: int) -> int:
        """Bytes of the tensor entering segment ``idx``."""
        return self.segments[idx].in_spec.size_bytes

    def out_bytes(self, idx: int) -> int:
        """Bytes of the tensor leaving segment ``idx``."""
        return self.segments[idx].out_spec.size_bytes

    def spatial_prefix_end(self, lo: int, hi: int) -> int:
        """Last index ``p`` of the spatial run starting at ``lo`` within
        ``[lo..hi]``; ``p < lo`` means segment ``lo`` is non-spatial."""
        self._check(lo, hi if hi >= lo else lo)
        return min(self._next_nonspatial[lo], hi + 1) - 1

    def signature(self) -> FrozenSet[SignatureToken]:
        """Plan-structure signature: the set of structural tokens of the
        chain, one per distinct (dominant layer class, spatial flag,
        FLOPs magnitude bucket) a segment exhibits.

        Two models whose chains are built from the same kinds of
        segments -- same dominant operators, same spatial/non-spatial
        shape, same order-of-magnitude compute -- share most tokens, so
        :func:`jaccard_similarity` over signatures is a cheap
        plan-structure similarity metric: architecture families
        (residual stacks, depthwise towers, VGG-style columns) cluster
        together without running any DSE.  The FLOPs bucket is the
        integer bit length of the segment's total FLOPs (a factor-of-2
        magnitude class), so minor shape differences do not split a
        family while a 100x compute gap does.

        Memoised on the (immutable) table; the serving specialization
        layer calls this once per distinct model.
        """
        signature = self._signature
        if signature is None:
            tokens = set()
            for seg in self.segments:
                # max() keeps the first maximum, so ties resolve in
                # LAYER_CLASSES order -- deterministic.
                dominant = max(
                    LAYER_CLASSES, key=lambda cls: seg.flops_by_class.get(cls, 0)
                )
                tokens.add((dominant, seg.spatial, seg.flops.bit_length()))
            signature = frozenset(tokens)
            self._signature = signature
        return signature

    def chain_slice(self, lo: int, hi: int) -> Tuple[Segment, ...]:
        """Memoised sub-chain ``segments[lo..hi]``.

        Returning the same tuple object per range lets identity-keyed
        memos downstream (e.g. span coarsening) hit across plans.
        """
        self._check(lo, hi)
        key = (lo, hi)
        cached = self._slices.get(key)
        if cached is None:
            cached = self.segments[lo : hi + 1]
            self._slices[key] = cached
        return cached

"""The Mix 1-8 concurrent workloads of the paper's Fig. 7.

"We created Mix 1-4 and Mix 5-8 with two and three different DNN
models from the target workloads, respectively."  The paper does not
list the exact compositions, so we take the canonical enumeration:
Mix 1-4 are the four cyclic pairs and Mix 5-8 the four 3-combinations
of {EfficientNetB0, InceptionNetV3, ResNet152, VGG19}.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dnn.models import MODEL_NAMES
from repro.workloads.requests import InferenceRequest, repeating_stream

_EFF, _INC, _RES, _VGG = MODEL_NAMES

#: Mix name -> model composition.
MIXES: Dict[str, Tuple[str, ...]] = {
    "mix1": (_EFF, _INC),
    "mix2": (_EFF, _RES),
    "mix3": (_INC, _VGG),
    "mix4": (_RES, _VGG),
    "mix5": (_EFF, _INC, _RES),
    "mix6": (_EFF, _INC, _VGG),
    "mix7": (_EFF, _RES, _VGG),
    "mix8": (_INC, _RES, _VGG),
}

MIX_NAMES = tuple(MIXES)


def mix_requests(
    mix_name: str, interval_s: float = 0.5, duration_s: float = 20.0
) -> List[InferenceRequest]:
    """Round-robin request stream for one mix.

    The paper measures inferences completed per 100 s; we run a shorter
    horizon and normalise (RunResult.throughput_per_100s), keeping the
    benchmark harness fast while preserving the steady-state rate.
    """
    if mix_name not in MIXES:
        raise KeyError(f"unknown mix {mix_name!r}; known: {sorted(MIXES)}")
    return repeating_stream(MIXES[mix_name], interval_s, duration_s)

"""Stochastic open-loop arrival processes for the serving experiments.

The paper's scenarios are fixed-interval streams (Fig. 6's 0.5 s
staircase, Fig. 7's saturating round-robin); a serving system must also
survive *random* load.  Three seeded, fully deterministic processes:

- :func:`poisson_stream` -- memoryless arrivals (exponential
  inter-arrival times), the canonical open-loop model.
- :func:`bursty_stream` -- on/off bursts: quiet gaps punctuated by
  back-to-back request groups, stressing the admission queue and the
  batch co-planner.
- :func:`heavy_tailed_stream` -- Pareto inter-arrival times: most gaps
  short, occasional very long lulls, so the backlog snapshot drifts
  across load buckets.

All generators draw from a private ``random.Random(seed)``, so a given
(seed, parameters) pair always produces the identical request list.
Models are assigned round-robin by default or drawn from the same seeded
generator (``shuffle_models=True``).

Every generator accepts ``priority_weights``, a ``{priority: weight}``
mapping tagging each request with a scheduling urgency drawn from the
same seeded generator (lower priority value = more urgent).  Leaving it
``None`` performs no extra draws, so legacy streams stay byte-identical.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Optional, Sequence

from repro.workloads.requests import InferenceRequest, PRIORITY_NORMAL


def _build_requests(
    models: Sequence[str],
    arrivals: Sequence[float],
    rng: random.Random,
    shuffle_models: bool,
    priority_weights: Optional[Mapping[int, float]] = None,
) -> List[InferenceRequest]:
    if not models:
        raise ValueError("no models to draw requests from")
    priorities: Optional[List[int]] = None
    weights: Optional[List[float]] = None
    if priority_weights is not None:
        priorities = sorted(priority_weights)
        weights = [priority_weights[priority] for priority in priorities]
        if not priorities or min(weights) < 0 or sum(weights) <= 0:
            raise ValueError(f"invalid priority weights: {priority_weights}")
    requests = []
    for idx, arrival in enumerate(arrivals):
        model = rng.choice(models) if shuffle_models else models[idx % len(models)]
        if priorities is None:
            priority = PRIORITY_NORMAL
        else:
            priority = rng.choices(priorities, weights=weights)[0]
        requests.append(
            InferenceRequest(
                request_id=idx, model=model, arrival_s=arrival, priority=priority
            )
        )
    return requests


def poisson_stream(
    models: Sequence[str],
    rate_rps: float,
    num_requests: int,
    seed: int = 0,
    shuffle_models: bool = False,
    priority_weights: Optional[Mapping[int, float]] = None,
) -> List[InferenceRequest]:
    """``num_requests`` Poisson arrivals at ``rate_rps`` requests/s."""
    if rate_rps <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ValueError(f"need at least one request, got {num_requests}")
    rng = random.Random(seed)
    now = 0.0
    arrivals = []
    for _ in range(num_requests):
        now += rng.expovariate(rate_rps)
        arrivals.append(now)
    return _build_requests(models, arrivals, rng, shuffle_models, priority_weights)


def bursty_stream(
    models: Sequence[str],
    burst_size: int,
    num_bursts: int,
    mean_gap_s: float,
    intra_burst_s: float = 0.0,
    seed: int = 0,
    shuffle_models: bool = False,
    priority_weights: Optional[Mapping[int, float]] = None,
) -> List[InferenceRequest]:
    """On/off bursts: ``num_bursts`` groups of ``burst_size`` requests.

    Quiet gaps are exponential with mean ``mean_gap_s``, measured from
    the *end* of one burst to the start of the next (so bursts never
    overlap and arrivals are monotone in request id); requests inside a
    burst are ``intra_burst_s`` apart (0 = truly simultaneous, the
    worst case for the admission queue).
    """
    if burst_size < 1 or num_bursts < 1:
        raise ValueError(f"bursts must be non-empty: {burst_size} x {num_bursts}")
    if mean_gap_s <= 0:
        raise ValueError(f"mean gap must be positive, got {mean_gap_s}")
    if intra_burst_s < 0:
        raise ValueError(f"negative intra-burst spacing: {intra_burst_s}")
    rng = random.Random(seed)
    arrivals = []
    now = 0.0
    for _ in range(num_bursts):
        start = now + rng.expovariate(1.0 / mean_gap_s)
        for position in range(burst_size):
            arrivals.append(start + position * intra_burst_s)
        now = arrivals[-1]
    return _build_requests(models, arrivals, rng, shuffle_models, priority_weights)


def heavy_tailed_stream(
    models: Sequence[str],
    scale_s: float,
    num_requests: int,
    alpha: float = 1.5,
    max_gap_s: Optional[float] = None,
    seed: int = 0,
    shuffle_models: bool = False,
    priority_weights: Optional[Mapping[int, float]] = None,
) -> List[InferenceRequest]:
    """Pareto inter-arrival times: ``gap = scale_s * pareto(alpha)``.

    ``alpha`` in (1, 2] gives a finite mean but very high variance --
    long lulls followed by clustered arrivals.  ``max_gap_s`` truncates
    pathological draws so a single sample cannot dominate the horizon.
    """
    if scale_s <= 0:
        raise ValueError(f"scale must be positive, got {scale_s}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
    if num_requests < 1:
        raise ValueError(f"need at least one request, got {num_requests}")
    rng = random.Random(seed)
    now = 0.0
    arrivals = []
    for _ in range(num_requests):
        gap = scale_s * rng.paretovariate(alpha)
        if max_gap_s is not None:
            gap = min(gap, max_gap_s)
        now += gap
        arrivals.append(now)
    return _build_requests(models, arrivals, rng, shuffle_models, priority_weights)

"""The progressive dynamic workload of the paper's Fig. 6.

"We created a dynamic workload with successive run-time inference
requests for every 0.5 s, in the order of EfficientNetB0,
InceptionNetV3, ResNet152, and VGG-19.  This creates a progressively
increasing workload such that at t=1.5 s, all four DNNs are running
concurrently on the edge cluster."
"""

from __future__ import annotations

from typing import List

from repro.dnn.models import MODEL_NAMES
from repro.workloads.requests import InferenceRequest, request_sequence

#: Arrival spacing of the Fig. 6 scenario.
FIG6_INTERVAL_S = 0.5


def progressive_workload(interval_s: float = FIG6_INTERVAL_S) -> List[InferenceRequest]:
    """The four-model staircase: Eff @0s, Inc @0.5s, Res @1.0s, VGG @1.5s."""
    return request_sequence(MODEL_NAMES, interval_s)

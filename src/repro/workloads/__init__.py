"""Workload generators: single requests, streams, mixes, scenarios,
seeded stochastic arrival processes."""

from repro.workloads.arrivals import (
    bursty_stream,
    heavy_tailed_stream,
    poisson_stream,
)
from repro.workloads.mixes import MIXES, MIX_NAMES, mix_requests
from repro.workloads.requests import (
    InferenceRequest,
    repeating_stream,
    request_sequence,
    single_request,
)
from repro.workloads.streaming import FIG6_INTERVAL_S, progressive_workload

__all__ = [
    "InferenceRequest",
    "single_request",
    "request_sequence",
    "repeating_stream",
    "MIXES",
    "MIX_NAMES",
    "mix_requests",
    "progressive_workload",
    "FIG6_INTERVAL_S",
    "poisson_stream",
    "bursty_stream",
    "heavy_tailed_stream",
]

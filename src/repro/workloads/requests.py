"""Inference requests: the unit of work arriving at the leader node."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


#: Priority of requests that never asked for one (lowest urgency class
#: number in use by default; smaller numbers are more urgent).
PRIORITY_NORMAL = 0


@dataclass(frozen=True)
class InferenceRequest:
    """One DNN inference request.

    ``arrival_s`` is the simulated time the request reaches the leader
    node's application module; ``model`` names a zoo entry.
    ``priority`` orders scheduling urgency -- lower values are more
    urgent, ``PRIORITY_NORMAL`` (0) is the default single-class traffic.
    """

    request_id: int
    model: str
    arrival_s: float = 0.0
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"negative arrival time: {self.arrival_s}")
        if self.request_id < 0:
            raise ValueError(f"negative request id: {self.request_id}")
        if self.priority < 0:
            raise ValueError(f"negative priority: {self.priority}")


def single_request(model: str) -> List[InferenceRequest]:
    """One request at t=0, for the Fig. 5 latency/energy measurements."""
    return [InferenceRequest(request_id=0, model=model, arrival_s=0.0)]


def request_sequence(models: Sequence[str], interval_s: float) -> List[InferenceRequest]:
    """Requests arriving every ``interval_s``, in the given model order."""
    if interval_s < 0:
        raise ValueError(f"negative interval: {interval_s}")
    return [
        InferenceRequest(request_id=idx, model=model, arrival_s=idx * interval_s)
        for idx, model in enumerate(models)
    ]


def repeating_stream(
    models: Sequence[str], interval_s: float, duration_s: float
) -> List[InferenceRequest]:
    """Round-robin over ``models`` every ``interval_s`` until ``duration_s``.

    Used by the Fig. 7 throughput mixes: a continuous stream of
    requests over a fixed horizon.
    """
    if interval_s <= 0:
        raise ValueError(f"interval must be positive: {interval_s}")
    requests = []
    idx = 0
    while True:
        arrival = idx * interval_s  # multiply, don't accumulate: no float drift
        if arrival >= duration_s:
            break
        requests.append(
            InferenceRequest(request_id=idx, model=models[idx % len(models)], arrival_s=arrival)
        )
        idx += 1
    return requests

"""Execution plan data model shared by HiDP and every baseline.

A strategy's output is an :class:`ExecutionPlan`: which devices take
which piece of the DNN, how each device runs its piece across its local
processors, and what crosses the network.  The plan executor
(:mod:`repro.core.executor`) interprets plans uniformly, so latency,
energy and throughput comparisons between strategies are apples to
apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

MODE_MODEL = "model"
MODE_DATA = "data"
MODE_LOCAL = "local"
PLAN_MODES = (MODE_MODEL, MODE_DATA, MODE_LOCAL)

LOCAL_SINGLE = "single"
LOCAL_DATA = "data"
LOCAL_PIPELINE = "pipeline"
LOCAL_STAGED = "staged"
LOCAL_MODES = (LOCAL_SINGLE, LOCAL_DATA, LOCAL_PIPELINE, LOCAL_STAGED)


@dataclass(frozen=True)
class UnitTask:
    """One compute task bound to a named processor of the host device."""

    processor: str
    flops_by_class: Mapping[str, int]
    input_bytes: int = 0
    output_bytes: int = 0
    label: str = ""
    #: False = executed through the default DL framework run-time
    #: (pays the processor's default_runtime_penalty); True = pinned to
    #: cores via CGroups the way HiDP's middleware runs tasks.
    pinned: bool = True
    #: Operator (layer) count of the piece; each op pays the
    #: processor's dispatch cost.
    num_ops: int = 0

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError(f"negative staging bytes: {self}")
        if any(v < 0 for v in self.flops_by_class.values()):
            raise ValueError(f"negative flops: {self}")

    @property
    def flops(self) -> int:
        return sum(self.flops_by_class.values())


@dataclass(frozen=True)
class LocalExec:
    """How one device executes its piece.

    - ``single``: one task on one processor.
    - ``data``: tasks run in parallel on distinct processors (local
      data partitioning); each stages its input/output over the memory
      fabric.
    - ``pipeline``: tasks run sequentially, handing tensors between
      processors (local model partitioning).
    - ``staged``: a sequence of barrier-synchronised stages, each a set
      of parallel tasks on distinct processors -- chunk-wise data
      partitioning where tiles re-merge (cheaply, over shared memory)
      at every chunk boundary, resetting halo growth.  ``stages`` holds
      the structure; ``tasks`` is its flattened view.
    """

    mode: str
    tasks: Tuple[UnitTask, ...]
    #: optional task run after the parallel tasks complete (the
    #: non-spatial tail of a locally data-partitioned block).
    tail: Optional[UnitTask] = None
    #: staged mode only: barrier-synchronised groups of parallel tasks.
    stages: Optional[Tuple[Tuple[UnitTask, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.mode not in LOCAL_MODES:
            raise ValueError(f"unknown local mode {self.mode!r}")
        if not self.tasks:
            raise ValueError("local execution needs at least one task")
        if self.mode == LOCAL_SINGLE and len(self.tasks) != 1:
            raise ValueError("single mode requires exactly one task")
        if self.tail is not None and self.mode == LOCAL_PIPELINE:
            raise ValueError("pipeline mode embeds its tail as the last stage")
        if self.mode == LOCAL_STAGED:
            if not self.stages:
                raise ValueError("staged mode requires stages")
            flattened = tuple(task for stage in self.stages for task in stage)
            if flattened != self.tasks:
                raise ValueError("tasks must be the flattened view of stages")
            for stage in self.stages:
                procs = [task.processor for task in stage]
                if len(set(procs)) != len(procs):
                    raise ValueError(f"stage reuses a processor: {procs}")
        elif self.stages is not None:
            raise ValueError(f"stages only valid in staged mode, not {self.mode!r}")
        if self.mode == LOCAL_DATA:
            procs = [task.processor for task in self.tasks]
            if len(set(procs)) != len(procs):
                raise ValueError(f"data mode requires distinct processors, got {procs}")

    @property
    def flops(self) -> int:
        total = sum(task.flops for task in self.tasks)
        if self.tail is not None:
            total += self.tail.flops
        return total

    @property
    def processors(self) -> Tuple[str, ...]:
        return tuple(task.processor for task in self.tasks)


@dataclass(frozen=True)
class NodeAssignment:
    """One device's share of the global plan.

    ``send_bytes`` is the payload shipped *to* this device (from the
    leader for data tiles; from the previous pipeline stage for model
    blocks); ``return_bytes`` the result shipped back to the leader
    (for data tiles and for the final pipeline stage).
    """

    device: str
    local: LocalExec
    send_bytes: int = 0
    return_bytes: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.send_bytes < 0 or self.return_bytes < 0:
            raise ValueError(f"negative transfer bytes: {self}")


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete, executable distribution decision for one request.

    ``mode`` selects the executor semantics:

    - ``data``: assignments run in parallel; results gather on the
      leader, then ``merge_exec`` (the non-spatial tail + merge) runs.
    - ``model``: assignments form a pipeline in order; the final output
      returns to the leader.
    - ``local``: single assignment on the leader, no network use.

    ``leader`` names the physical device that runs the leader FSM for
    this plan -- the probe source, the offload fan-out origin, the
    merge host, and the scheduler CPU the DSE overhead is charged on.
    ``None`` means the cluster's default leader (``devices[0]``), which
    keeps legacy plans byte-identical.
    """

    strategy: str
    model: str
    mode: str
    assignments: Tuple[NodeAssignment, ...]
    merge_exec: Optional[LocalExec] = None
    predicted_latency_s: float = 0.0
    dse_overhead_s: float = 0.0
    notes: Dict[str, Any] = field(default_factory=dict)
    leader: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in PLAN_MODES:
            raise ValueError(f"unknown plan mode {self.mode!r}")
        if not self.assignments:
            raise ValueError("plan needs at least one assignment")
        if self.mode == MODE_LOCAL and len(self.assignments) != 1:
            raise ValueError("local mode carries exactly one assignment")
        if self.predicted_latency_s < 0 or self.dse_overhead_s < 0:
            raise ValueError("negative predicted latency or overhead")

    @property
    def devices(self) -> Tuple[str, ...]:
        return tuple(assignment.device for assignment in self.assignments)

    @property
    def total_flops(self) -> int:
        total = sum(assignment.local.flops for assignment in self.assignments)
        if self.merge_exec is not None:
            total += self.merge_exec.flops
        return total

    @property
    def network_bytes(self) -> int:
        return sum(a.send_bytes + a.return_bytes for a in self.assignments)

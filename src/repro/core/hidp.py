"""HiDP: the hierarchical partitioning strategy (the paper's contribution).

Global tier (Algorithm 1, lines 3-7): the leader gathers the
availability vector, builds the global resource vector ``Psi`` from
*full-node* rates (every core counted -- the heterogeneity-aware view),
and runs the DP twice: once for model partitioning (``Theta_omega``,
Eq. 5) and once for data partitioning (``Theta_sigma``, Eq. 6), keeping
the faster mode.

Local tier (lines 8-10): every node that received a piece re-runs the
same DP over its own processors (``psi`` instead of ``Psi``) through
:class:`~repro.core.local_partitioner.LocalPartitioner`.

The ablation switches (``aggregation``, ``local_modes``,
``allowed_modes``) let the experiment harness degrade HiDP into its
global-only / single-mode variants, and are exactly how the DisNet
baseline is derived (the paper implemented DisNet from HiDP's own
partitioning modules).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.dp import ExecutorModel, pipeline_cuts_dp, scale_flops
from repro.core.dse import DataModeDecision, DataSearchSpec, explore_data_batch
from repro.core.local_partitioner import LocalDecision, LocalPartitioner
from repro.core.plans import (
    ExecutionPlan,
    LOCAL_SINGLE,
    LocalExec,
    MODE_DATA,
    MODE_LOCAL,
    MODE_MODEL,
    NodeAssignment,
    UnitTask,
)
from repro.core.strategy import (
    AGGREGATE_ALL,
    AGGREGATE_DEFAULT,
    Strategy,
    device_executor_models,
)
from repro.dnn.graph import DNNGraph, Segment
from repro.dnn.partition import (
    PartitionError,
    make_data_partition_from_shares,
    spatial_prefix,
)
from repro.dnn.segment_table import SegmentTable
from repro.platform.cluster import Cluster
from repro.platform.device import Device


@dataclass(frozen=True)
class ModeCandidate:
    """One explored partitioning mode with its predicted latency."""

    mode: str
    predicted_s: float
    assignments: Tuple[NodeAssignment, ...]
    merge_exec: Optional[LocalExec]
    notes: Dict


#: Selection objectives for the DSE (the paper's future work -- "We
#: consider energy-efficient distributed inference for future work" --
#: implemented here as alternative candidate-selection criteria).
OBJECTIVE_LATENCY = "latency"
OBJECTIVE_ENERGY = "energy"
OBJECTIVE_EDP = "edp"
OBJECTIVES = (OBJECTIVE_LATENCY, OBJECTIVE_ENERGY, OBJECTIVE_EDP)


def estimate_candidate_energy(
    cluster: Cluster, candidate: ModeCandidate, leader: Optional[str] = None
) -> float:
    """Predicted energy [J] of executing a candidate plan.

    Marginal (busy - idle) energy of every task on its processor, plus
    the cluster-wide idle floor over the predicted makespan -- the same
    decomposition the measured Fig. 5b energy uses.  ``leader`` is the
    device hosting the merge (default: the cluster leader).
    """

    def task_energy(device_name: str, tasks) -> float:
        device = cluster.device(device_name)
        joules = 0.0
        for task in tasks:
            proc = device.processor(task.processor)
            busy = proc.task_seconds(
                task.flops_by_class, num_ops=task.num_ops, pinned=task.pinned
            )
            joules += proc.power.active_energy_j(busy)
        return joules

    energy = 0.0
    for assignment in candidate.assignments:
        local = assignment.local
        energy += task_energy(assignment.device, local.tasks)
        if local.tail is not None:
            energy += task_energy(assignment.device, (local.tail,))
    if candidate.merge_exec is not None:
        merge_host = leader if leader is not None else cluster.leader.name
        energy += task_energy(merge_host, candidate.merge_exec.tasks)
    idle_floor_w = sum(device.idle_power_w for device in cluster.devices)
    energy += idle_floor_w * candidate.predicted_s
    return energy


def device_local_signature(device: Device) -> Tuple:
    """Hardware identity of a device's local tier.

    Local-tier decisions depend only on the processor set and the
    memory fabric -- not on the device's *name* -- so two boards of the
    same type (or one board across planning passes) can share one local
    search.  ``Processor`` is a frozen value dataclass, so the tuple is
    hashable and compares by spec.
    """
    return (device.intra_bw_bytes_s, device.intra_latency_s, device.processors)


def _relabel_task(task: UnitTask, old: str, new: str) -> UnitTask:
    if task.label.startswith(old):
        return replace(task, label=new + task.label[len(old):])
    return replace(task, label=new)


def relabel_decision(decision: LocalDecision, old: str, new: str) -> LocalDecision:
    """A shared local decision re-labelled for a new piece.

    Task labels embed the piece label as a prefix (``tile3``,
    ``blk1/s0t2``, ...); everything else about the decision -- the
    mode, the processors, the predicted time -- is label-independent.
    """
    if old == new:
        return decision
    execution = decision.execution
    if execution.stages is not None:
        stages = tuple(
            tuple(_relabel_task(task, old, new) for task in stage)
            for stage in execution.stages
        )
        tasks = tuple(task for stage in stages for task in stage)
    else:
        stages = None
        tasks = tuple(_relabel_task(task, old, new) for task in execution.tasks)
    tail = _relabel_task(execution.tail, old, new) if execution.tail is not None else None
    return LocalDecision(
        LocalExec(mode=execution.mode, tasks=tasks, tail=tail, stages=stages),
        decision.predicted_s,
    )


def candidate_score(
    cluster: Cluster, candidate: ModeCandidate, objective: str, leader: Optional[str] = None
) -> float:
    """Objective value of a candidate (lower is better)."""
    if objective == OBJECTIVE_LATENCY:
        return candidate.predicted_s
    energy = estimate_candidate_energy(cluster, candidate, leader=leader)
    if objective == OBJECTIVE_ENERGY:
        return energy
    if objective == OBJECTIVE_EDP:
        return energy * candidate.predicted_s
    raise ValueError(f"unknown objective {objective!r}; known: {OBJECTIVES}")


class HiDPStrategy(Strategy):
    """Hierarchical DNN partitioning (HiDP, DATE 2025)."""

    name = "hidp"
    #: "The overhead of using DP algorithm-based exploration including
    #: both global and local partitioning is 15 ms on average."
    dse_overhead_s = 0.015
    #: HiDP binds workloads to cores via CGroups; derived strategies
    #: that rely on the default framework run-time set this False.
    pinned = True
    #: The run-time scheduler monitors cluster-wide status before every
    #: exploration (Algorithm 1 line 3).
    load_aware = True

    def __init__(
        self,
        quanta: int = 20,
        local_quanta: int = 10,
        aggregation: str = AGGREGATE_ALL,
        local_data: bool = True,
        local_pipeline: bool = True,
        allowed_modes: Tuple[str, ...] = (MODE_DATA, MODE_MODEL),
        max_pipeline_segments: int = 48,
        max_cuts: int = 10,
        objective: str = OBJECTIVE_LATENCY,
    ):
        super().__init__()
        if objective not in OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}; known: {OBJECTIVES}")
        self.quanta = quanta
        self.local_quanta = local_quanta
        self.aggregation = aggregation
        self.local_data = local_data
        self.local_pipeline = local_pipeline
        self.allowed_modes = allowed_modes
        self.max_pipeline_segments = max_pipeline_segments
        self.max_cuts = max_cuts
        self.objective = objective
        # Local-tier decision memo, shared across identical processors
        # (and across planning passes: the local tier never sees the
        # load vector, so a replan under a drifted load bucket reuses
        # every local search verbatim).  Values pin a strong graph ref
        # so the id() in the key stays unambiguous.
        self._local_memo: "OrderedDict[Tuple, Tuple[DNNGraph, str, LocalDecision]]" = (
            OrderedDict()
        )
        #: Observability counters for the serving bench / tests.
        self.local_searches = 0
        self.local_shared = 0

    #: Bound on the shared local-decision memo.
    LOCAL_MEMO_MAX = 4096

    # Local tier -----------------------------------------------------------

    def _local_partitioner(self, device: Device) -> LocalPartitioner:
        return LocalPartitioner(
            device,
            quanta=self.local_quanta,
            enable_data=self.local_data,
            enable_pipeline=self.local_pipeline,
        )

    def _local_single_default(
        self,
        device: Device,
        flops_by_class: Dict[str, int],
        num_ops: int,
        in_bytes: int,
        out_bytes: int,
        label: str,
    ) -> LocalDecision:
        """Default-runtime execution: everything on the default processor."""
        proc = device.default_processor
        task = UnitTask(
            processor=proc.name,
            flops_by_class=flops_by_class,
            input_bytes=in_bytes,
            output_bytes=out_bytes,
            label=label,
            pinned=self.pinned,
            num_ops=num_ops,
        )
        predicted = proc.task_seconds(flops_by_class, num_ops=num_ops, pinned=self.pinned)
        predicted += device.transfer_seconds(in_bytes)
        return LocalDecision(LocalExec(mode=LOCAL_SINGLE, tasks=(task,)), predicted)

    def _plan_piece(
        self,
        device: Device,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        band: Optional[Tuple[int, int]],
        label: str,
        table: Optional[SegmentTable] = None,
    ) -> LocalDecision:
        """Local-tier decision for one piece, shared across identical
        processors.

        The decision depends on the device *hardware* (processor set +
        memory fabric), the graph and the piece -- not on the device
        name, the cluster load or the planning pass -- so it is memoised
        on that signature.  Twin boards share one search, and replans
        triggered by load-bucket drift reuse every local decision from
        the previous pass (only labels are rewritten).
        """
        memo_key = (
            device_local_signature(device),
            id(graph),
            seg_range,
            band,
            segments is graph.segments(),
        )
        entry = self._local_memo.get(memo_key)
        if entry is not None and entry[0] is graph:
            self._local_memo.move_to_end(memo_key)
            self.local_shared += 1
            return relabel_decision(entry[2], entry[1], label)
        decision = self._plan_piece_uncached(device, graph, segments, seg_range, band, label, table)
        self.local_searches += 1
        # Memoise only pieces of the graph's own memoised chain: for ad
        # hoc segment lists the range indices alone are ambiguous.
        if memo_key[-1]:
            self._local_memo[memo_key] = (graph, label, decision)
            while len(self._local_memo) > self.LOCAL_MEMO_MAX:
                self._local_memo.popitem(last=False)
        return decision

    def _plan_piece_uncached(
        self,
        device: Device,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        band: Optional[Tuple[int, int]],
        label: str,
        table: Optional[SegmentTable] = None,
    ) -> LocalDecision:
        """Local-tier decision for one piece (ablation-aware)."""
        if table is None:
            table = SegmentTable(segments)
        if self.local_data or self.local_pipeline:
            return self._local_partitioner(device).plan_piece(
                graph, seg_range, band=band, segments=segments, label=label, table=table
            )
        lo, hi = seg_range
        flops = table.range_flops(lo, hi)
        num_ops = table.range_ops(lo, hi)
        in_bytes = segments[lo].in_spec.size_bytes
        out_bytes = segments[hi].out_spec.size_bytes
        if band is not None:
            prefix_lo, prefix_hi = spatial_prefix(graph, segments, seg_range)
            height = graph.spec(segments[prefix_hi].layer_names[-1]).height
            fraction = (band[1] - band[0]) / height
            flops = scale_flops(flops, fraction)
            in_bytes = int(in_bytes * fraction)
            out_bytes = int(out_bytes * fraction)
        return self._local_single_default(device, flops, num_ops, in_bytes, out_bytes, label)

    # Global tier: data mode -------------------------------------------------

    @staticmethod
    def _data_tail_seconds(models: Sequence[ExecutorModel], table: SegmentTable):
        """Search-time tail estimate: leader at full-node rate; the
        chosen tail is re-planned exactly by the local tier."""

        def tail_seconds(tail_range: Tuple[int, int]) -> float:
            return models[0].compute_seconds(
                table.range_flops(tail_range[0], tail_range[1]),
                table.range_ops(tail_range[0], tail_range[1]),
            )

        return tail_seconds

    def _data_search_spec(
        self, graph: DNNGraph, models: Sequence[ExecutorModel]
    ) -> DataSearchSpec:
        """The global-tier data search of one graph, batchable across a
        backlog via :func:`explore_data_batch`."""
        segments = graph.segments()
        table = graph.segment_table()
        return DataSearchSpec(
            graph=graph,
            segments=segments,
            seg_range=(0, len(segments) - 1),
            table=table,
            tail_seconds=self._data_tail_seconds(models, table),
            min_sigma=2,
            max_cuts=self.max_cuts,
        )

    def _candidate_data_from_decision(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        devices: Sequence[Device],
        cluster: Cluster,
        decision: Optional[DataModeDecision],
        table: SegmentTable,
    ) -> Optional[ModeCandidate]:
        """Assemble the data-mode candidate from a DSE decision (the
        local tier plans every tile; shared across identical boards)."""
        if decision is None:
            return None
        cut = decision.cut_segment
        assignments: List[NodeAssignment] = []
        worst = 0.0
        leader_name = devices[0].name
        for (device_idx, _), tile in zip(decision.active, decision.partition.tiles):
            device = devices[device_idx]
            local = self._plan_piece(
                device,
                graph,
                segments,
                (0, cut),
                (tile.out_lo, tile.out_hi),
                f"{graph.name}/tile{tile.index}",
                table=table,
            )
            is_leader = device.name == leader_name
            send = 0 if is_leader else tile.input_bytes
            ret = 0 if is_leader else tile.output_bytes
            assignments.append(
                NodeAssignment(
                    device=device.name,
                    local=local.execution,
                    send_bytes=send,
                    return_bytes=ret,
                    label=f"tile{tile.index}",
                )
            )
            finish = local.predicted_s
            if not is_leader:
                finish += cluster.network.transfer_seconds(send)
                finish += cluster.network.transfer_seconds(ret)
            worst = max(worst, finish)
        merge_exec = None
        predicted = worst
        if decision.tail_range is not None:
            tail_decision = self._plan_piece(
                devices[0],
                graph,
                segments,
                decision.tail_range,
                None,
                f"{graph.name}/tail",
                table=table,
            )
            merge_exec = tail_decision.execution
            predicted += tail_decision.predicted_s
        return ModeCandidate(
            mode=MODE_DATA,
            predicted_s=predicted,
            assignments=tuple(assignments),
            merge_exec=merge_exec,
            notes={
                "sigma": decision.sigma,
                "cut_segment": cut,
                "shares": [share for _, share in decision.active],
            },
        )

    # Global tier: model mode --------------------------------------------------

    def _candidate_model(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        devices: Sequence[Device],
        models: Sequence[ExecutorModel],
        cluster: Cluster,
        table: Optional[SegmentTable] = None,
    ) -> Optional[ModeCandidate]:
        if table is None:
            table = SegmentTable(segments)
        pipe = pipeline_cuts_dp(
            segments, models, source_executor=0, max_segments=self.max_pipeline_segments
        )
        leader_name = devices[0].name
        if pipe.num_blocks == 1 and devices[pipe.blocks[0][2]].name == leader_name:
            seg_lo, seg_hi, executor_idx = pipe.blocks[0]
            device = devices[executor_idx]
            decision = self._plan_piece(
                device, graph, segments, (seg_lo, seg_hi), None, f"{graph.name}/local", table=table
            )
            assignment = NodeAssignment(
                device=device.name, local=decision.execution, label="local"
            )
            return ModeCandidate(
                mode=MODE_LOCAL,
                predicted_s=decision.predicted_s,
                assignments=(assignment,),
                merge_exec=None,
                notes={"blocks": 1},
            )
        assignments = []
        predicted = 0.0
        previous = leader_name
        for block_idx, (seg_lo, seg_hi, executor_idx) in enumerate(pipe.blocks):
            device = devices[executor_idx]
            decision = self._plan_piece(
                device,
                graph,
                segments,
                (seg_lo, seg_hi),
                None,
                f"{graph.name}/blk{block_idx}",
                table=table,
            )
            send = segments[seg_lo].in_spec.size_bytes if device.name != previous else 0
            is_last = block_idx == len(pipe.blocks) - 1
            ret = segments[seg_hi].out_spec.size_bytes if (is_last and device.name != leader_name) else 0
            assignments.append(
                NodeAssignment(
                    device=device.name,
                    local=decision.execution,
                    send_bytes=send,
                    return_bytes=ret,
                    label=f"blk{block_idx}",
                )
            )
            if send:
                predicted += cluster.network.transfer_seconds(send)
            predicted += decision.predicted_s
            if ret:
                predicted += cluster.network.transfer_seconds(ret)
            previous = device.name
        return ModeCandidate(
            mode=MODE_MODEL,
            predicted_s=predicted,
            assignments=tuple(assignments),
            merge_exec=None,
            notes={"blocks": pipe.num_blocks, "dp_latency": pipe.latency_s},
        )

    # Entry point -----------------------------------------------------------------

    def _planning_context(
        self, cluster: Cluster, load: Optional[Mapping[str, float]], leader: Optional[str] = None
    ) -> Tuple[List[Device], List[ExecutorModel]]:
        """Available devices (leader first) and their executor models.

        The planning leader heads the device list, so every index-0
        assumption in the DP kernels (free communication, pipeline
        source, tail host) targets the elected physical leader.  With
        the default leader this is the historical device order.
        """
        devices = list(cluster.planning_devices(leader))
        models = device_executor_models(cluster, devices, self.aggregation, load=load)
        return devices, models

    def _plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
    ) -> ExecutionPlan:
        devices, models = self._planning_context(cluster, load, leader=leader)
        data_decision: Optional[DataModeDecision] = None
        if MODE_DATA in self.allowed_modes:
            spec = self._data_search_spec(graph, models)
            data_decision = explore_data_batch([spec], models, quanta=self.quanta)[0]
        return self._assemble_plan(graph, cluster, devices, models, data_decision)

    def plan_batch(
        self,
        graphs: Sequence[DNNGraph],
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
        partition: Optional[object] = None,
    ) -> List[ExecutionPlan]:
        """Co-plan a backlog of concurrent requests in one pass.

        Distinct models in the backlog run their global-tier data DSE
        through a single batched share-DP sweep
        (:func:`~repro.core.dse.explore_data_batch`); duplicate models
        and already-cached (model, leader, load bucket) tuples are
        planned once.  Plans are identical to per-request :meth:`plan`
        calls and land in the same cache, so later ``plan()`` calls
        hit.  ``leader`` applies batch-wide (one dispatcher plans from
        one physical leader), as does the cache ``partition``.
        """
        effective = self.effective_load(load)
        leader = self.resolve_leader(cluster, leader)
        # cache_key's layout with the per-batch invariants (availability
        # signature, leader, quantised load) hoisted out of the per-graph
        # loop -- the load quantisation alone is a sort plus a bucket pass
        # per call; keep the tuple shape in sync with Strategy.cache_key.
        signature = cluster.availability_signature()
        load_key = self.load_key(effective)
        if partition is None:
            keys = [
                (graph.name, cluster.name, signature, leader, load_key)
                for graph in graphs
            ]
        else:
            keys = [
                (partition, graph.name, cluster.name, signature, leader, load_key)
                for graph in graphs
            ]
        # Resolve against the cache up front: re-reading after the
        # inserts below could KeyError if this very batch's new plans
        # evicted a pre-existing key from the LRU.
        plans_by_key: Dict[Tuple, ExecutionPlan] = {}
        missing: "OrderedDict[Tuple, DNNGraph]" = OrderedDict()
        for key, graph in zip(keys, graphs):
            if key in plans_by_key or key in missing:
                continue
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                plans_by_key[key] = cached
            else:
                missing[key] = graph
        if missing:
            devices, models = self._planning_context(cluster, effective, leader=leader)
            decisions: Dict[Tuple, Optional[DataModeDecision]] = {}
            if MODE_DATA in self.allowed_modes:
                specs = [
                    self._data_search_spec(graph, models) for graph in missing.values()
                ]
                batch = explore_data_batch(specs, models, quanta=self.quanta)
                decisions = dict(zip(missing.keys(), batch))
            for key, graph in missing.items():
                plan = self._assemble_plan(
                    graph, cluster, devices, models, decisions.get(key)
                )
                self._cache_put(key, plan)
                plans_by_key[key] = plan
        return [plans_by_key[key] for key in keys]

    def _assemble_plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        devices: Sequence[Device],
        models: Sequence[ExecutorModel],
        data_decision: Optional[DataModeDecision],
    ) -> ExecutionPlan:
        """Mode selection + plan assembly from a (possibly batched) DSE
        decision; the local tier runs here."""
        segments = graph.segments()
        table = graph.segment_table()
        candidates: List[ModeCandidate] = []
        if MODE_DATA in self.allowed_modes:
            candidate = self._candidate_data_from_decision(
                graph, segments, devices, cluster, data_decision, table
            )
            if candidate is not None:
                candidates.append(candidate)
        if MODE_MODEL in self.allowed_modes:
            candidate = self._candidate_model(graph, segments, devices, models, cluster, table)
            if candidate is not None:
                candidates.append(candidate)
        if not candidates:
            # Degenerate fall-back: everything on the leader.
            decision = self._plan_piece(
                devices[0], graph, segments, (0, len(segments) - 1), None, graph.name, table=table
            )
            candidates.append(
                ModeCandidate(
                    mode=MODE_LOCAL,
                    predicted_s=decision.predicted_s,
                    assignments=(
                        NodeAssignment(device=devices[0].name, local=decision.execution),
                    ),
                    merge_exec=None,
                    notes={"fallback": True},
                )
            )
        leader_name = devices[0].name
        best = min(
            candidates,
            key=lambda c: candidate_score(cluster, c, self.objective, leader=leader_name),
        )
        notes = dict(best.notes, explored=[c.mode for c in candidates])
        if self.objective != OBJECTIVE_LATENCY:
            notes["objective"] = self.objective
            notes["predicted_energy_j"] = estimate_candidate_energy(
                cluster, best, leader=leader_name
            )
        return ExecutionPlan(
            strategy=self.name,
            model=graph.name,
            mode=best.mode,
            assignments=best.assignments,
            merge_exec=best.merge_exec,
            predicted_latency_s=best.predicted_s,
            dse_overhead_s=self.dse_overhead_s,
            notes=notes,
            leader=leader_name,
        )

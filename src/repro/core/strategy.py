"""Strategy interface and shared executor-model helpers.

A strategy turns (DNN graph, cluster state) into an
:class:`~repro.core.plans.ExecutionPlan`.  HiDP and all three baselines
implement this interface, so the framework and the experiment harness
treat them interchangeably.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.dp import ExecutorModel
from repro.core.plans import ExecutionPlan
from repro.dnn.graph import DNNGraph
from repro.dnn.layers import LAYER_CLASSES
from repro.platform.cluster import Cluster
from repro.platform.device import Device

#: Pseudo-infinite communication rate for the executor already holding
#: the data (the leader in global searches).
LOCAL_COMM_RATE = 1e18

AGGREGATE_ALL = "all"
AGGREGATE_DEFAULT = "default"


def device_executor_models(
    cluster: Cluster,
    devices: Sequence[Device],
    aggregation: str = AGGREGATE_ALL,
    leader_index: int = 0,
    load: Optional[Mapping[str, float]] = None,
) -> List[ExecutorModel]:
    """Global-tier executor models, one per device.

    ``aggregation`` selects how a node's capacity is represented:

    - ``all``: sum of all processors' per-class rates.  This is HiDP's
      heterogeneity-aware view (the node will exploit every core).
    - ``default``: rates of the default (TensorFlow-chosen) processor
      only -- the misrepresented capacity the paper criticises, used by
      the global-only baselines.

    ``load`` maps device names to outstanding-backlog seconds; a loaded
    node's fixed cost grows accordingly, steering new work away from
    congested nodes (the run-time scheduler's cluster monitoring).
    """
    if aggregation not in (AGGREGATE_ALL, AGGREGATE_DEFAULT):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    models = []
    for index, device in enumerate(devices):
        rates: Dict[str, float] = {}
        for cls in LAYER_CLASSES:
            if aggregation == AGGREGATE_ALL:
                rates[cls] = sum(proc.rate(cls) for proc in device.processors)
            else:
                rates[cls] = device.default_processor.rate(cls)
        if index == leader_index:
            comm, fixed = LOCAL_COMM_RATE, 0.0
        else:
            comm = cluster.beta(device)
            fixed = cluster.network.latency_s + device.default_processor.setup_time_s
        if load is not None:
            fixed += load.get(device.name, 0.0)
        if aggregation == AGGREGATE_ALL:
            dispatch = min(proc.dispatch_time_s for proc in device.processors)
        else:
            dispatch = device.default_processor.dispatch_time_s
        models.append(
            ExecutorModel(
                ident=device.name,
                rates=rates,
                comm_bytes_s=comm,
                fixed_s=fixed,
                dispatch_s=dispatch,
            )
        )
    return models


class Strategy(abc.ABC):
    """Distributed-inference planning strategy."""

    #: Human-readable identifier used in reports and plots.
    name: str = "base"

    #: Planning overhead charged on the leader CPU before execution.
    dse_overhead_s: float = 0.0

    def __init__(self) -> None:
        self._cache: Dict[Tuple, ExecutionPlan] = {}

    #: Strategies that consult cluster load when planning override
    #: this; load-unaware baselines (MoDNN's static proportional rule)
    #: leave it False and ignore the snapshot.
    load_aware: bool = False

    @abc.abstractmethod
    def _plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
    ) -> ExecutionPlan:
        """Compute a fresh plan (no caching)."""

    def plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
    ) -> ExecutionPlan:
        """Plan with memoisation on (model, availability, load bucket).

        Planning is deterministic given the graph, the availability
        vector and the (quantised) load snapshot, so repeated requests
        for the same model under similar conditions reuse the decision
        -- mirroring how the paper's middleware caches DSE results for
        known workloads.
        """
        effective_load = load if (load is not None and self.load_aware) else None
        load_key = ()
        if effective_load is not None:
            load_key = tuple(
                (name, round(backlog / self.LOAD_BUCKET_S))
                for name, backlog in sorted(effective_load.items())
            )
        key = (
            graph.name,
            cluster.name,
            tuple(sorted(cluster.availability_vector().items())),
            load_key,
        )
        if key not in self._cache:
            self._cache[key] = self._plan(graph, cluster, load=effective_load)
        return self._cache[key]

    #: Load quantisation bucket for plan caching.
    LOAD_BUCKET_S = 0.05

    def clear_cache(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

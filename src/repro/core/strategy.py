"""Strategy interface and shared executor-model helpers.

A strategy turns (DNN graph, cluster state) into an
:class:`~repro.core.plans.ExecutionPlan`.  HiDP and all three baselines
implement this interface, so the framework and the experiment harness
treat them interchangeably.

Physical leaders (ISSUE 5): every planning entry point accepts a
``leader`` device name.  The leader is the executor with free
communication and zero fixed cost in the global search
(:func:`device_executor_models`), the pipeline source, the merge host,
and the node whose scheduler CPU pays the DSE overhead; plans record it
(:attr:`~repro.core.plans.ExecutionPlan.leader`) so the executor FSM
runs from the same device the search assumed.  ``leader=None`` resolves
to the cluster's default leader (``devices[0]``), reproducing every
legacy plan and schedule byte-identically; the plan cache keys on the
resolved leader, so per-shard leaders never collide in the cache.
"""

from __future__ import annotations

import abc
import math
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.dp import ExecutorModel
from repro.core.plans import ExecutionPlan
from repro.dnn.graph import DNNGraph
from repro.dnn.layers import LAYER_CLASSES
from repro.platform.cluster import Cluster
from repro.platform.device import Device

#: Pseudo-infinite communication rate for the executor already holding
#: the data (the leader in global searches).
LOCAL_COMM_RATE = 1e18

AGGREGATE_ALL = "all"
AGGREGATE_DEFAULT = "default"


def device_executor_models(
    cluster: Cluster,
    devices: Sequence[Device],
    aggregation: str = AGGREGATE_ALL,
    leader_index: int = 0,
    load: Optional[Mapping[str, float]] = None,
    leader: Optional[str] = None,
) -> List[ExecutorModel]:
    """Global-tier executor models, one per device.

    ``aggregation`` selects how a node's capacity is represented:

    - ``all``: sum of all processors' per-class rates.  This is HiDP's
      heterogeneity-aware view (the node will exploit every core).
    - ``default``: rates of the default (TensorFlow-chosen) processor
      only -- the misrepresented capacity the paper criticises, used by
      the global-only baselines.

    ``load`` maps device names to outstanding-backlog seconds; a loaded
    node's fixed cost grows accordingly, steering new work away from
    congested nodes (the run-time scheduler's cluster monitoring).

    The leader -- the device already holding the input data, which
    therefore communicates for free and pays no fixed cost -- may sit
    at *any* index: name it with ``leader`` (which overrides
    ``leader_index``) or index it with ``leader_index`` (default 0, the
    historical behaviour).
    """
    if aggregation not in (AGGREGATE_ALL, AGGREGATE_DEFAULT):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    if leader is not None:
        names = [device.name for device in devices]
        try:
            leader_index = names.index(leader)
        except ValueError:
            raise ValueError(f"leader {leader!r} not among devices {names}") from None
    elif not 0 <= leader_index < len(devices):
        raise ValueError(f"leader index {leader_index} out of range for {len(devices)} devices")
    models = []
    for index, device in enumerate(devices):
        rates: Dict[str, float] = {}
        for cls in LAYER_CLASSES:
            if aggregation == AGGREGATE_ALL:
                rates[cls] = sum(proc.rate(cls) for proc in device.processors)
            else:
                rates[cls] = device.default_processor.rate(cls)
        if index == leader_index:
            comm, fixed = LOCAL_COMM_RATE, 0.0
        else:
            comm = cluster.beta(device)
            fixed = cluster.network.latency_s + device.default_processor.setup_time_s
        if load is not None:
            fixed += load.get(device.name, 0.0)
        if aggregation == AGGREGATE_ALL:
            dispatch = min(proc.dispatch_time_s for proc in device.processors)
        else:
            dispatch = device.default_processor.dispatch_time_s
        models.append(
            ExecutorModel(
                ident=device.name,
                rates=rates,
                comm_bytes_s=comm,
                fixed_s=fixed,
                dispatch_s=dispatch,
            )
        )
    return models


class Strategy(abc.ABC):
    """Distributed-inference planning strategy."""

    #: Human-readable identifier used in reports and plots.
    name: str = "base"

    #: Planning overhead charged on the leader CPU before execution.
    dse_overhead_s: float = 0.0

    def __init__(self) -> None:
        self._cache: "OrderedDict[Tuple, ExecutionPlan]" = OrderedDict()

    #: Strategies that consult cluster load when planning override
    #: this; load-unaware baselines (MoDNN's static proportional rule)
    #: leave it False and ignore the snapshot.
    load_aware: bool = False

    @abc.abstractmethod
    def _plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
    ) -> ExecutionPlan:
        """Compute a fresh plan (no caching).

        ``leader`` is the resolved physical leader device name (never
        None when called through :meth:`plan`).
        """

    def resolve_leader(self, cluster: Cluster, leader: Optional[str]) -> str:
        """The physical leader a planning call uses (default: the
        cluster's ``devices[0]``)."""
        return leader if leader is not None else cluster.leader.name

    def effective_load(
        self, load: Optional[Mapping[str, float]]
    ) -> Optional[Mapping[str, float]]:
        """The load snapshot this strategy actually consults (None if
        load-unaware)."""
        return load if (load is not None and self.load_aware) else None

    def load_bucket(self, backlog_s: float) -> int:
        """Quantise a backlog into its load bucket (floor semantics).

        Floor bucketing keeps bucket edges monotonic: a growing backlog
        can only move to a higher bucket, never oscillate the way
        ``round()``'s banker's rounding does at ``.5`` edges.
        """
        return math.floor(backlog_s / self.LOAD_BUCKET_S)

    def load_key(self, load: Optional[Mapping[str, float]]) -> Tuple:
        """Quantised identity of a load snapshot.

        Shared by the plan-cache key and the serving scheduler's drift
        detection, so "this plan's bucket" always means the same thing
        in both places.  ``load`` must already be the effective
        (strategy-filtered) load.
        """
        if load is None:
            return ()
        return tuple(
            (name, self.load_bucket(backlog)) for name, backlog in sorted(load.items())
        )

    def cache_key(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
        partition: Optional[object] = None,
    ) -> Tuple:
        """Plan-cache key: (model, cluster, availability, leader, load
        buckets), optionally namespaced by a cache ``partition``.

        ``load`` must already be the effective (strategy-filtered)
        load; ``leader`` is resolved so ``None`` and the default
        leader's name key identically.  ``partition`` isolates a
        caller's working set from every other partition's (the sharded
        scheduler's workload-clustered mode keys each shard's plans by
        its shard index, so one shard's churn never evicts another
        specialist's hot cluster); ``None`` keeps the historical
        unpartitioned key byte-for-byte.
        """
        key = (
            graph.name,
            cluster.name,
            cluster.availability_signature(),
            self.resolve_leader(cluster, leader),
            self.load_key(load),
        )
        if partition is None:
            return key
        return (partition,) + key

    def plan(
        self,
        graph: DNNGraph,
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
        partition: Optional[object] = None,
    ) -> ExecutionPlan:
        """Plan with memoisation on (model, availability, leader, load
        bucket), optionally inside a cache ``partition``.

        Planning is deterministic given the graph, the availability
        vector, the physical leader and the (quantised) load snapshot,
        so repeated requests for the same model under similar
        conditions reuse the decision -- mirroring how the paper's
        middleware caches DSE results for known workloads.  The cache
        is LRU-bounded: a long open-loop request stream visits
        unboundedly many load buckets, and an unbounded dict would leak
        plans for buckets never seen again.
        """
        effective = self.effective_load(load)
        resolved = self.resolve_leader(cluster, leader)
        key = self.cache_key(
            graph, cluster, effective, leader=resolved, partition=partition
        )
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        plan = self._plan(graph, cluster, load=effective, leader=resolved)
        self._cache_put(key, plan)
        return plan

    def plan_batch(
        self,
        graphs: Sequence[DNNGraph],
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
        partition: Optional[object] = None,
    ) -> List[ExecutionPlan]:
        """Co-plan a backlog of requests under one load snapshot.

        The base implementation plans sequentially (sharing the plan
        cache, so duplicate models in the backlog are planned once);
        strategies with batched DSE kernels override this to price the
        whole backlog in shared array sweeps.  ``leader`` applies to
        the whole batch (one dispatcher plans from one leader), as does
        the cache ``partition``.
        """
        return [
            self.plan(graph, cluster, load=load, leader=leader, partition=partition)
            for graph in graphs
        ]

    def uncached_plans(
        self,
        graphs: Sequence[DNNGraph],
        cluster: Cluster,
        load: Optional[Mapping[str, float]] = None,
        leader: Optional[str] = None,
        partition: Optional[object] = None,
    ) -> int:
        """Distinct plans a pass over ``graphs`` would compute fresh.

        Counts the distinct plan-cache keys (model x availability x
        leader x load bucket, within ``partition``) not currently
        cached.  Serving schedulers use this to charge
        *measured-bucket* planning overhead: a fresh (model, bucket)
        combination pays the DSE cost on the scheduler CPU, while a
        decision the middleware already cached is free -- mirroring how
        the paper's run-time scheduler reuses DSE results for known
        workloads.
        """
        effective = self.effective_load(load)
        keys = {
            self.cache_key(graph, cluster, effective, leader=leader, partition=partition)
            for graph in graphs
        }
        return sum(1 for key in keys if key not in self._cache)

    def _cache_put(self, key: Tuple, plan: ExecutionPlan) -> None:
        self._cache[key] = plan
        self._cache.move_to_end(key)
        while len(self._cache) > self.PLAN_CACHE_MAX:
            self._cache.popitem(last=False)

    #: Load quantisation bucket for plan caching.
    LOAD_BUCKET_S = 0.05

    #: Plan-cache LRU bound (like the DNNGraph memos, the cache must not
    #: grow without bound under a sustained request stream).
    PLAN_CACHE_MAX = 512

    def clear_cache(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

"""Dynamic-programming partition-point search (the paper's DSE core).

The paper uses "a standard subset sum algorithm for an efficient
recursive search with time complexity O(n*m)", applied identically at
the global level (arguments: DNN + ``Psi``) and the local level
(arguments: DNN + ``psi``) -- only the executor rate vector changes.
This module implements both searches over an abstract
:class:`ExecutorModel`, so devices and processors plug in uniformly:

- :func:`data_shares_dp` -- subset-sum style distribution of workload
  quanta over executors, minimising the parallel makespan (data
  partitioning, Eq. 6).
- :func:`pipeline_cuts_dp` -- cut-point placement and block assignment
  for model partitioning, minimising single-inference latency as the
  sum of per-block compute and cut-tensor transfer times (Eq. 5).

Greedy reference implementations are provided for the ablation study
(DESIGN.md section 5.3).

Both DP kernels ship in two interchangeable forms: a pure-Python
reference (``*_reference``, the seed implementation, kept as the
executable specification) and a vectorized numpy fast path that
computes the same tables in batched array sweeps.  The fast path
replicates the reference's floating-point evaluation order and
tie-breaking exactly, so plans are byte-identical; randomized
equivalence tests in ``tests/core/test_dp_fastpath.py`` enforce this.
Set ``REPRO_DSE_FASTPATH=0`` (or run without numpy) to force the
reference implementations.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dnn.graph import Segment
from repro.dnn.layers import LAYER_CLASSES
from repro.fastpath import fastpath_enabled, np


@dataclass(frozen=True)
class ExecutorModel:
    """Abstract executor seen by the DP: a device (global tier) or a
    processor (local tier).

    ``rates`` are per-layer-class compute rates [FLOPs/s];
    ``comm_bytes_s`` the rate at which input data reaches this executor
    (network ``beta`` globally, memory fabric ``mu`` locally;
    ``float('inf')`` for the executor already holding the data);
    ``fixed_s`` the fixed per-task cost (setup + message latency).
    """

    ident: str
    rates: Mapping[str, float]
    comm_bytes_s: float
    fixed_s: float = 0.0
    #: Per-operator dispatch time of this executor.
    dispatch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_bytes_s <= 0:
            raise ValueError(f"{self.ident}: non-positive comm rate")
        if self.fixed_s < 0 or self.dispatch_s < 0:
            raise ValueError(f"{self.ident}: negative fixed/dispatch cost")
        for cls, rate in self.rates.items():
            if rate <= 0:
                raise ValueError(f"{self.ident}: non-positive rate for {cls}")

    def compute_seconds(self, flops_by_class: Mapping[str, int], num_ops: int = 0) -> float:
        seconds = num_ops * self.dispatch_s
        for cls, flops in flops_by_class.items():
            if flops:
                seconds += flops / self.rates[cls]
        return seconds

    def comm_seconds(self, size_bytes: float) -> float:
        return size_bytes / self.comm_bytes_s


def scale_flops(flops_by_class: Mapping[str, int], factor: float) -> Dict[str, int]:
    """Scale a FLOPs breakdown by a share factor."""
    if factor < 0:
        raise ValueError(f"negative scale factor {factor}")
    return {cls: int(flops * factor) for cls, flops in flops_by_class.items() if flops}


# --------------------------------------------------------------------------
# Data partitioning: subset-sum share allocation
# --------------------------------------------------------------------------


def _no_inflation(share: float) -> float:
    """Default inflation model: shares cost exactly their fraction."""
    return 1.0


def _executor_signature(executors: Sequence[ExecutorModel]) -> Tuple:
    """Hashable value identity of an executor list.

    Executor models are rebuilt from the cluster on every planning
    pass, so result memos key on their field values rather than object
    identity."""
    return tuple(
        (
            executor.ident,
            tuple(executor.rates.items()),
            executor.comm_bytes_s,
            executor.fixed_s,
            executor.dispatch_s,
        )
        for executor in executors
    )


def _lru_get(cache: "OrderedDict", key):
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _lru_put(cache: "OrderedDict", key, value, max_entries: int) -> None:
    cache[key] = value
    if len(cache) > max_entries:
        cache.popitem(last=False)


@dataclass(frozen=True)
class SharePlan:
    """Result of the data-partitioning DP."""

    shares: Tuple[float, ...]  # per executor, summing to 1; zeros allowed
    makespan_s: float

    @property
    def active_executors(self) -> int:
        return sum(1 for share in self.shares if share > 0)


def data_shares_dp(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
    num_ops: int = 0,
    inflation: Callable[[float], float] = _no_inflation,
) -> SharePlan:
    """Distribute workload quanta over executors minimising makespan.

    The workload is cut into ``quanta`` equal units (the subset-sum
    granularity).  Executor ``e`` receiving ``q`` units finishes at::

        fixed_e + dispatch_e * num_ops
        + (q/Q) * input_bytes / comm_e
        + inflation(q/Q) * (q/Q) * T_e

    where ``T_e`` is the executor's full-workload compute time.  Every
    active executor dispatches *all* ``num_ops`` operators of the tiled
    range regardless of its share -- the term that makes very thin
    shares counter-productive.  The DP table ``best[i][r]`` holds the
    minimal makespan using executors ``i..`` for ``r`` remaining units
    -- the back-propagating block-by-block search the paper describes,
    in O(n_executors * quanta^2).

    Dispatches to the vectorized kernel (one numpy pass for the whole
    ``finish_time[executor, units]`` matrix plus batched DP sweeps)
    unless :func:`fastpath_enabled` is off; results are byte-identical.
    On the fast path, results are additionally memoised by value (the
    DSE re-prices identical workloads against identical executors every
    planning pass); plans are immutable, so sharing them is safe.
    """
    if fastpath_enabled():
        return data_shares_dp_batch(
            ((flops_by_class, input_bytes, num_ops),), executors, quanta, inflation
        )[0]
    return data_shares_dp_reference(
        flops_by_class, input_bytes, executors, quanta, num_ops, inflation
    )


def data_shares_dp_reference(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
    num_ops: int = 0,
    inflation: Callable[[float], float] = _no_inflation,
) -> SharePlan:
    """Pure-Python reference for :func:`data_shares_dp` (seed code)."""
    if quanta < 1:
        raise ValueError(f"quanta must be positive, got {quanta}")
    if not executors:
        raise ValueError("no executors")
    count = len(executors)
    full_compute = [executor.compute_seconds(flops_by_class) for executor in executors]

    def finish_time(executor_idx: int, units: int) -> float:
        if units == 0:
            return 0.0
        share = units / quanta
        executor = executors[executor_idx]
        comm = executor.comm_seconds(share * input_bytes)
        dispatch = num_ops * executor.dispatch_s
        return (
            executor.fixed_s
            + dispatch
            + comm
            + inflation(share) * share * full_compute[executor_idx]
        )

    INF = float("inf")
    # best[i][r]: minimal makespan distributing r units over executors i..
    best = [[INF] * (quanta + 1) for _ in range(count + 1)]
    choice = [[0] * (quanta + 1) for _ in range(count + 1)]
    best[count][0] = 0.0
    for i in range(count - 1, -1, -1):
        for r in range(quanta + 1):
            for q in range(r + 1):
                rest = best[i + 1][r - q]
                if rest == INF:
                    continue
                candidate = max(finish_time(i, q), rest)
                if candidate < best[i][r]:
                    best[i][r] = candidate
                    choice[i][r] = q
    shares: List[float] = []
    remaining = quanta
    for i in range(count):
        q = choice[i][remaining]
        shares.append(q / quanta)
        remaining -= q
    return SharePlan(shares=tuple(shares), makespan_s=best[0][quanta])


def data_shares_dp_batch(
    items: Sequence[Tuple[Mapping[str, int], int, int]],
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
    inflation: Callable[[float], float] = _no_inflation,
) -> List[SharePlan]:
    """Run :func:`data_shares_dp` for many workloads against the same
    executors in one batched numpy sweep.

    ``items`` is a sequence of ``(flops_by_class, input_bytes,
    num_ops)`` tuples -- e.g. the tiled range of every candidate depth
    cut of one DSE pass.  The DP tables of all items roll backwards
    together, so the numpy call overhead is paid once per executor
    instead of once per (item, executor).  Results are byte-identical
    to per-item :func:`data_shares_dp` calls, and memoised by value on
    the fast path (default inflation only -- callback identity is not
    a stable cache key).
    """
    if not items:
        return []
    if not fastpath_enabled():
        return [
            data_shares_dp_reference(flops, in_bytes, executors, quanta, num_ops, inflation)
            for flops, in_bytes, num_ops in items
        ]
    if inflation is not _no_inflation:
        return _data_shares_dp_numpy_batch(items, executors, quanta, inflation)
    signature = (_executor_signature(executors), quanta)
    plans: List[Optional[SharePlan]] = []
    misses: List[Tuple[int, Tuple]] = []
    for idx, (flops, in_bytes, num_ops) in enumerate(items):
        key = (tuple(flops.items()), in_bytes, num_ops, signature)
        plan = _lru_get(_SHARES_RESULTS, key)
        plans.append(plan)
        if plan is None:
            misses.append((idx, key))
    if misses:
        fresh = _data_shares_dp_numpy_batch(
            [items[idx] for idx, _ in misses], executors, quanta, inflation
        )
        for (idx, key), plan in zip(misses, fresh):
            plans[idx] = plan
            _lru_put(_SHARES_RESULTS, key, plan, _SHARES_RESULTS_MAX)
    return plans


#: Value-keyed memo of share plans (fast path, default inflation only).
_SHARES_RESULTS: "OrderedDict[Tuple, SharePlan]" = OrderedDict()
_SHARES_RESULTS_MAX = 8192


def clear_result_memos() -> None:
    """Drop the module-level result memos (share plans, pipeline plans,
    coarsened spans, assembled partitions).  Benchmarks call this
    between measurements so a warmed memo from one configuration cannot
    subsidise another."""
    from repro.dnn.partition import clear_partition_memos

    _SHARES_RESULTS.clear()
    _PIPELINE_RESULTS.clear()
    _COARSEN_CACHE.clear()
    clear_partition_memos()


#: Per-quanta cache of the (r, q) index geometry shared by every sweep.
_SHARES_GEOMETRY: Dict[int, Tuple] = {}


def _shares_geometry(quanta: int) -> Tuple:
    geometry = _SHARES_GEOMETRY.get(quanta)
    if geometry is None:
        r_idx = np.arange(quanta + 1)
        rel = r_idx[:, None] - r_idx[None, :]  # [r, q] = remaining after giving q
        valid = rel >= 0
        rel_clipped = np.where(valid, rel, 0)
        shares_vec = r_idx.astype(np.float64) / quanta
        geometry = (r_idx, valid, rel_clipped, shares_vec)
        _SHARES_GEOMETRY[quanta] = geometry
    return geometry


def _data_shares_dp_numpy(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
    quanta: int,
    num_ops: int,
    inflation: Callable[[float], float],
) -> SharePlan:
    return _data_shares_dp_numpy_batch(
        ((flops_by_class, input_bytes, num_ops),), executors, quanta, inflation
    )[0]


def _data_shares_dp_numpy_batch(
    items: Sequence[Tuple[Mapping[str, int], int, int]],
    executors: Sequence[ExecutorModel],
    quanta: int,
    inflation: Callable[[float], float],
) -> List[SharePlan]:
    """Vectorized :func:`data_shares_dp`: the finish-time matrices and
    the per-executor DP sweeps of all items run as whole-array numpy
    operations.

    Floating-point evaluation order matches the reference term by term
    (``((fixed + dispatch) + comm) + ((inflation * share) * T)`` and
    ``max`` / first-argmin tie-breaking), so plans are byte-identical.
    """
    if quanta < 1:
        raise ValueError(f"quanta must be positive, got {quanta}")
    if not executors:
        raise ValueError("no executors")
    count = len(executors)
    num_items = len(items)
    r_idx, valid, rel_clipped, shares_vec = _shares_geometry(quanta)
    if inflation is _no_inflation:
        # inflation(share) * share == 1.0 * share == share exactly.
        weight = shares_vec
    else:
        # Evaluated in Python exactly as the reference does per
        # finish_time call (the callback is arbitrary).
        weight = np.array(
            [inflation(q / quanta) * (q / quanta) for q in range(quanta + 1)],
            dtype=np.float64,
        )

    in_bytes_arr = np.array([item[1] for item in items], dtype=np.float64)
    num_ops_arr = np.array([item[2] for item in items], dtype=np.float64)
    # T[c, i]: full-workload compute time of item c on executor i,
    # evaluated through compute_seconds (dict order == reference).
    full_compute = np.array(
        [[executor.compute_seconds(item[0]) for executor in executors] for item in items],
        dtype=np.float64,
    )
    finish = np.empty((num_items, count, quanta + 1), dtype=np.float64)
    for i, executor in enumerate(executors):
        comm = (shares_vec[None, :] * in_bytes_arr[:, None]) / executor.comm_bytes_s
        base = executor.fixed_s + num_ops_arr * executor.dispatch_s
        rows = (base[:, None] + comm) + weight[None, :] * full_compute[:, i][:, None]
        rows[:, 0] = 0.0  # zero units: no work, no cost
        finish[:, i, :] = rows

    INF = float("inf")
    # best[c, r] for executors i.. ; rolls backwards exactly like the
    # reference's best[i+1] row, for every item at once.
    best = np.full((num_items, quanta + 1), INF)
    best[:, 0] = 0.0
    choices = np.empty((count, num_items, quanta + 1), dtype=np.int64)
    for i in range(count - 1, -1, -1):
        rest = np.where(valid, best[:, rel_clipped], INF)  # (c, r, q)
        cand = np.maximum(finish[:, i, :][:, None, :], rest)
        choice = np.argmin(cand, axis=2)  # first minimum == smallest q
        choices[i] = choice
        best = np.take_along_axis(cand, choice[:, :, None], axis=2)[:, :, 0]

    plans: List[SharePlan] = []
    for c in range(num_items):
        shares: List[float] = []
        remaining = quanta
        for i in range(count):
            q = int(choices[i, c, remaining])
            shares.append(q / quanta)
            remaining -= q
        plans.append(SharePlan(shares=tuple(shares), makespan_s=float(best[c, quanta])))
    return plans


def data_shares_greedy(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
) -> SharePlan:
    """Proportional-to-rate allocation (MoDNN-style reference heuristic).

    Ignores fixed costs and communication; used as the ablation
    baseline for the DP and as the MoDNN distribution rule.
    """
    del input_bytes
    rates = [executor.compute_seconds(flops_by_class) for executor in executors]
    inv = [1.0 / r if r > 0 else 0.0 for r in rates]
    total = sum(inv)
    if total == 0:
        raise ValueError("all executors have zero rate")
    shares = tuple(v / total for v in inv)
    makespan = max(
        executor.fixed_s + share * rate
        for executor, share, rate in zip(executors, shares, rates)
        if share > 0
    )
    return SharePlan(shares=shares, makespan_s=makespan)


# --------------------------------------------------------------------------
# Model partitioning: cut placement + block assignment
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelinePlan:
    """Result of the model-partitioning DP."""

    #: (seg_lo, seg_hi, executor index) per block, in execution order.
    blocks: Tuple[Tuple[int, int, int], ...]
    latency_s: float
    bottleneck_s: float  # slowest stage time; 1/throughput for streams

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


def pipeline_cuts_dp(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int = 0,
    return_bytes_weight: float = 1.0,
    max_segments: int = 48,
) -> PipelinePlan:
    """Optimal contiguous-block pipeline over heterogeneous executors.

    ``dp[i][e]`` is the minimal latency to finish segments ``[0..i]``
    with the block containing segment ``i`` running on executor ``e``;
    transitions scan the previous cut point and executor.  Transfers
    charge the cut tensor at the *receiving* executor's communication
    rate (the data must reach it), plus its fixed message cost.  The
    final result returns to ``source_executor``.

    Long segment chains (ResNet-152 has >100) are coarsened to at most
    ``max_segments`` candidates by merging the cheapest neighbours --
    this preserves every high-value cut while bounding the O(n^2 m^2)
    scan; the paper's block-by-block convergence does the same thing.

    Dispatches to the vectorized kernel (per-executor compute-prefix
    matrix plus a batched ``(j, pe)`` transition scan per row) unless
    :func:`fastpath_enabled` is off; results are byte-identical.  On
    the fast path, plans are memoised per (segment sequence identity,
    executor values): the same memoised chains and the same cluster
    views recur every planning pass, and plans are immutable.
    """
    if not fastpath_enabled():
        return pipeline_cuts_dp_reference(
            segments, executors, source_executor, return_bytes_weight, max_segments
        )
    # Memoise only immutable (tuple) chains: an identity check cannot
    # detect in-place mutation of a list between calls.
    if not isinstance(segments, tuple):
        return _pipeline_cuts_dp_numpy(
            segments, executors, source_executor, return_bytes_weight, max_segments
        )
    key = (
        id(segments),
        _executor_signature(executors),
        source_executor,
        return_bytes_weight,
        max_segments,
    )
    cached = _lru_get(_PIPELINE_RESULTS, key)
    if cached is not None and cached[0] is segments:
        return cached[1]
    plan = _pipeline_cuts_dp_numpy(
        segments, executors, source_executor, return_bytes_weight, max_segments
    )
    # the strong segments ref pins the id, keeping the key unambiguous
    _lru_put(_PIPELINE_RESULTS, key, (segments, plan), _PIPELINE_RESULTS_MAX)
    return plan


#: Identity+value-keyed memo of pipeline plans (fast path only).
_PIPELINE_RESULTS: "OrderedDict[Tuple, Tuple[Sequence[Segment], PipelinePlan]]" = OrderedDict()
_PIPELINE_RESULTS_MAX = 256


def pipeline_cuts_dp_reference(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int = 0,
    return_bytes_weight: float = 1.0,
    max_segments: int = 48,
) -> PipelinePlan:
    """Pure-Python reference for :func:`pipeline_cuts_dp` (seed code)."""
    if not segments:
        raise ValueError("no segments")
    if not executors:
        raise ValueError("no executors")
    if not 0 <= source_executor < len(executors):
        raise ValueError(f"bad source executor {source_executor}")

    spans = _coarsen(segments, max_segments)
    n = len(spans)
    m = len(executors)
    compute = [
        [executors[e].compute_seconds(span_flops, span_ops) for e in range(m)]
        for span_flops, _, _, _, span_ops in spans
    ]
    # prefix compute sums per executor for O(1) block cost
    prefix = [[0.0] * (n + 1) for _ in range(m)]
    for e in range(m):
        for i in range(n):
            prefix[e][i + 1] = prefix[e][i] + compute[i][e]

    in_bytes = [span[1] for span in spans]
    out_bytes = [span[2] for span in spans]

    INF = float("inf")
    dp = [[INF] * m for _ in range(n)]
    parent: List[List[Optional[Tuple[int, int]]]] = [[None] * m for _ in range(n)]
    stage: List[List[float]] = [[0.0] * m for _ in range(n)]

    for i in range(n):
        for e in range(m):
            block_time = prefix[e][i + 1] - prefix[e][0]
            if e == source_executor:
                entry = block_time
            else:
                entry = executors[e].fixed_s + executors[e].comm_seconds(in_bytes[0]) + block_time
            if entry < dp[i][e]:
                dp[i][e] = entry
                parent[i][e] = None
                stage[i][e] = entry
    for i in range(n):
        for e in range(m):
            for j in range(i):
                for pe in range(m):
                    if dp[j][pe] == INF or pe == e:
                        continue
                    block_time = prefix[e][i + 1] - prefix[e][j + 1]
                    transfer = executors[e].fixed_s + executors[e].comm_seconds(in_bytes[j + 1])
                    candidate = dp[j][pe] + transfer + block_time
                    if candidate < dp[i][e]:
                        dp[i][e] = candidate
                        parent[i][e] = (j, pe)
                        stage[i][e] = transfer + block_time

    best_e, best_total = 0, INF
    for e in range(m):
        if dp[n - 1][e] == INF:
            continue
        back = 0.0
        if e != source_executor:
            back = (
                executors[source_executor].fixed_s
                + executors[source_executor].comm_seconds(out_bytes[n - 1]) * return_bytes_weight
            )
        total = dp[n - 1][e] + back
        if total < best_total:
            best_total, best_e = total, e

    blocks: List[Tuple[int, int, int]] = []
    i, e = n - 1, best_e
    bottleneck = 0.0
    while True:
        link = parent[i][e]
        j = -1 if link is None else link[0]
        seg_lo = spans[j + 1][3][0]
        seg_hi = spans[i][3][1]
        blocks.append((seg_lo, seg_hi, e))
        bottleneck = max(bottleneck, stage[i][e])
        if link is None:
            break
        i, e = link
    blocks.reverse()
    return PipelinePlan(blocks=tuple(blocks), latency_s=best_total, bottleneck_s=bottleneck)


def _pipeline_cuts_dp_numpy(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int,
    return_bytes_weight: float,
    max_segments: int,
) -> PipelinePlan:
    """Vectorized :func:`pipeline_cuts_dp`: the inner ``(j, pe)``
    transition scan of each ``(i, e)`` cell runs as one batched numpy
    reduction over the compute-prefix matrix.

    Floating-point evaluation order matches the reference --
    ``(dp[j][pe] + transfer) + block`` per candidate, strict-improvement
    updates, row-major first-argmin tie-breaking -- so plans are
    byte-identical.
    """
    if not segments:
        raise ValueError("no segments")
    if not executors:
        raise ValueError("no executors")
    if not 0 <= source_executor < len(executors):
        raise ValueError(f"bad source executor {source_executor}")

    spans = _coarsen(segments, max_segments)
    n = len(spans)
    m = len(executors)
    # Per-executor compute prefix.  When every span dict carries the
    # canonical LAYER_CLASSES key order (always true for graph-built
    # segments), the compute matrix is assembled column-by-column in
    # that same order -- bitwise identical to compute_seconds' dict
    # loop, since skipped zero terms add exactly 0.0.  np.cumsum is a
    # ufunc accumulate: strictly sequential, like the reference prefix.
    classes = tuple(LAYER_CLASSES)
    if all(tuple(span[0]) == classes for span in spans):
        flops_mat = np.array(
            [[span[0][cls] for cls in classes] for span in spans], dtype=np.float64
        )
        ops_arr = np.array([span[4] for span in spans], dtype=np.float64)
        used = [c for c in range(len(classes)) if flops_mat[:, c].any()]
        prefix = np.zeros((m, n + 1), dtype=np.float64)
        for e, executor in enumerate(executors):
            col = ops_arr * executor.dispatch_s
            for c in used:
                col = col + flops_mat[:, c] / executor.rates[classes[c]]
            prefix[e, 1:] = np.cumsum(col)
    else:  # pragma: no cover - non-canonical dicts come from hand-built segments
        compute = [
            [executors[e].compute_seconds(span_flops, span_ops) for e in range(m)]
            for span_flops, _, _, _, span_ops in spans
        ]
        prefix = np.zeros((m, n + 1), dtype=np.float64)
        for e in range(m):
            acc = 0.0
            for i in range(n):
                acc = acc + compute[i][e]
                prefix[e][i + 1] = acc

    in_bytes = [span[1] for span in spans]
    out_bytes = [span[2] for span in spans]

    INF = float("inf")
    # transfer[e][j]: cost of executor e receiving the cut tensor after
    # span j (fixed message cost + cut bytes at e's comm rate).
    if n > 1:
        in_next = np.array(in_bytes[1:], dtype=np.float64)
        transfer = np.empty((m, n - 1), dtype=np.float64)
        for e in range(m):
            transfer[e] = executors[e].fixed_s + (in_next / executors[e].comm_bytes_s)
    else:
        transfer = np.zeros((m, 0), dtype=np.float64)
    # entry head: cost of the input tensor reaching the first block.
    head = np.empty(m, dtype=np.float64)
    for e in range(m):
        if e == source_executor:
            head[e] = 0.0
        else:
            head[e] = executors[e].fixed_s + executors[e].comm_seconds(in_bytes[0])

    dp = np.full((n, m), INF, dtype=np.float64)
    stage = np.zeros((n, m), dtype=np.float64)
    parent: List[List[Optional[Tuple[int, int]]]] = [[None] * m for _ in range(n)]
    diag = np.arange(m)

    for i in range(n):
        dp[i] = head + (prefix[:, i + 1] - prefix[:, 0])
        stage[i] = dp[i]
        if i == 0:
            continue
        blk = prefix[:, i + 1][:, None] - prefix[:, 1 : i + 1]  # (e, j)
        tr = transfer[:, :i]
        cand = (dp[:i, :][None, :, :] + tr[:, :, None]) + blk[:, :, None]  # (e, j, pe)
        cand[diag, :, diag] = INF  # pe == e is not a cut
        flat = cand.reshape(m, i * m)
        pos = np.argmin(flat, axis=1)  # first minimum == reference scan order
        vals = flat[diag, pos]
        for e in range(m):
            if vals[e] < dp[i, e]:
                j, pe = divmod(int(pos[e]), m)
                dp[i, e] = vals[e]
                parent[i][e] = (j, pe)
                stage[i, e] = tr[e, j] + blk[e, j]

    best_e, best_total = 0, INF
    source = executors[source_executor]
    for e in range(m):
        if dp[n - 1][e] == INF:
            continue
        back = 0.0
        if e != source_executor:
            back = source.fixed_s + source.comm_seconds(out_bytes[n - 1]) * return_bytes_weight
        total = float(dp[n - 1][e]) + back
        if total < best_total:
            best_total, best_e = total, e

    blocks: List[Tuple[int, int, int]] = []
    i, e = n - 1, best_e
    bottleneck = 0.0
    while True:
        link = parent[i][e]
        j = -1 if link is None else link[0]
        seg_lo = spans[j + 1][3][0]
        seg_hi = spans[i][3][1]
        blocks.append((seg_lo, seg_hi, e))
        bottleneck = max(bottleneck, float(stage[i][e]))
        if link is None:
            break
        i, e = link
    blocks.reverse()
    return PipelinePlan(blocks=tuple(blocks), latency_s=best_total, bottleneck_s=bottleneck)


def pipeline_greedy(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int = 0,
) -> PipelinePlan:
    """Reference heuristic: run everything on the single fastest executor.

    This is what a no-search strategy would do; the ablation bench
    compares its plan quality against :func:`pipeline_cuts_dp`.
    """
    total = {cls: 0 for cls in LAYER_CLASSES}
    total_ops = sum(seg.num_ops for seg in segments)
    for seg in segments:
        for cls, flops in seg.flops_by_class.items():
            total[cls] = total.get(cls, 0) + flops
    best_e, best_time = source_executor, float("inf")
    for e, executor in enumerate(executors):
        time = executor.compute_seconds(total, total_ops)
        if e != source_executor:
            time += executor.fixed_s + executor.comm_seconds(segments[0].in_bytes)
            time += executors[source_executor].comm_seconds(segments[-1].out_bytes)
        if time < best_time:
            best_time, best_e = time, e
    block = (segments[0].index, segments[-1].index, best_e)
    return PipelinePlan(blocks=(block,), latency_s=best_time, bottleneck_s=best_time)


#: Identity-validated memo of coarsened spans: planning re-coarsens the
#: same (memoised) segment chains every pass.  Values hold a strong ref
#: to their key sequence, so an id() is never reused while its entry
#: lives; the size bound keeps throwaway sequences from accumulating.
_COARSEN_CACHE: "OrderedDict[Tuple[int, int], Tuple[Sequence[Segment], List]]" = OrderedDict()
_COARSEN_CACHE_MAX = 64


def _coarsen(
    segments: Sequence[Segment], max_segments: int
) -> List[Tuple[Dict[str, int], int, int, Tuple[int, int], int]]:
    """Merge adjacent segments until at most ``max_segments`` spans remain.

    Each span is (flops_by_class, in_bytes, out_bytes, (seg_lo, seg_hi),
    num_ops).  Pairs with the smallest combined FLOPs merge first, so
    the coarse chain keeps the expensive regions separable.

    Implemented as a lazy-deletion heap over neighbour pairs (O(n log
    n) instead of the reference's repeated O(n^2) min-scan).  Pair costs
    are exact ints and ties break on the left span's chain position, so
    the merge order -- and hence the output -- matches
    :func:`_coarsen_reference` exactly.

    Results are memoised per (segment tuple, max_segments); callers
    must treat the returned spans as read-only (all in-repo callers
    do).  Mutable sequences are not memoised -- identity cannot detect
    in-place mutation between calls.
    """
    if not isinstance(segments, tuple):
        return _coarsen_uncached(segments, max_segments)
    key = (id(segments), max_segments)
    cached = _COARSEN_CACHE.get(key)
    if cached is not None and cached[0] is segments:
        _COARSEN_CACHE.move_to_end(key)
        return cached[1]
    spans = _coarsen_uncached(segments, max_segments)
    _COARSEN_CACHE[key] = (segments, spans)
    if len(_COARSEN_CACHE) > _COARSEN_CACHE_MAX:
        _COARSEN_CACHE.popitem(last=False)
    return spans


def _coarsen_uncached(
    segments: Sequence[Segment], max_segments: int
) -> List[Tuple[Dict[str, int], int, int, Tuple[int, int], int]]:
    spans = [
        (
            dict(seg.flops_by_class),
            seg.in_bytes,
            seg.out_bytes,
            (seg.index, seg.index),
            seg.num_ops,
        )
        for seg in segments
    ]
    n = len(spans)
    if n <= max_segments:
        return spans
    totals = [sum(span[0].values()) for span in spans]
    prev_idx = list(range(-1, n - 1))
    next_idx = list(range(1, n + 1))  # n acts as the end sentinel
    alive = [True] * n
    # Chain order never changes under merges, so the left span's first
    # segment index is a stable stand-in for its current list position
    # (the reference's tie-break: leftmost pair among equal costs).
    order = [span[3][0] for span in spans]
    heap = [(totals[i] + totals[i + 1], order[i], i, i + 1) for i in range(n - 1)]
    heapq.heapify(heap)
    remaining = n
    while remaining > max_segments:
        cost, _, left_i, right_i = heapq.heappop(heap)
        if (
            not alive[left_i]
            or not alive[right_i]
            or next_idx[left_i] != right_i
            or cost != totals[left_i] + totals[right_i]
        ):
            continue  # stale entry: one side merged since it was pushed
        left, right = spans[left_i], spans[right_i]
        merged_flops = dict(left[0])
        for cls, flops in right[0].items():
            merged_flops[cls] = merged_flops.get(cls, 0) + flops
        spans[left_i] = (
            merged_flops,
            left[1],
            right[2],
            (left[3][0], right[3][1]),
            left[4] + right[4],
        )
        totals[left_i] += totals[right_i]
        alive[right_i] = False
        successor = next_idx[right_i]
        next_idx[left_i] = successor
        if successor < n:
            prev_idx[successor] = left_i
            heapq.heappush(
                heap, (totals[left_i] + totals[successor], order[left_i], left_i, successor)
            )
        predecessor = prev_idx[left_i]
        if predecessor >= 0:
            heapq.heappush(
                heap, (totals[predecessor] + totals[left_i], order[predecessor], predecessor, left_i)
            )
        remaining -= 1
    return [spans[i] for i in range(n) if alive[i]]


def _coarsen_reference(
    segments: Sequence[Segment], max_segments: int
) -> List[Tuple[Dict[str, int], int, int, Tuple[int, int], int]]:
    """Seed O(n^2) implementation of :func:`_coarsen`, kept as the
    executable specification for the equivalence tests."""
    spans = [
        (
            dict(seg.flops_by_class),
            seg.in_bytes,
            seg.out_bytes,
            (seg.index, seg.index),
            seg.num_ops,
        )
        for seg in segments
    ]
    while len(spans) > max_segments:
        best_idx, best_cost = 0, float("inf")
        for idx in range(len(spans) - 1):
            cost = sum(spans[idx][0].values()) + sum(spans[idx + 1][0].values())
            if cost < best_cost:
                best_cost, best_idx = cost, idx
        left, right = spans[best_idx], spans[best_idx + 1]
        merged_flops = dict(left[0])
        for cls, flops in right[0].items():
            merged_flops[cls] = merged_flops.get(cls, 0) + flops
        spans[best_idx : best_idx + 2] = [
            (merged_flops, left[1], right[2], (left[3][0], right[3][1]), left[4] + right[4])
        ]
    return spans

"""Dynamic-programming partition-point search (the paper's DSE core).

The paper uses "a standard subset sum algorithm for an efficient
recursive search with time complexity O(n*m)", applied identically at
the global level (arguments: DNN + ``Psi``) and the local level
(arguments: DNN + ``psi``) -- only the executor rate vector changes.
This module implements both searches over an abstract
:class:`ExecutorModel`, so devices and processors plug in uniformly:

- :func:`data_shares_dp` -- subset-sum style distribution of workload
  quanta over executors, minimising the parallel makespan (data
  partitioning, Eq. 6).
- :func:`pipeline_cuts_dp` -- cut-point placement and block assignment
  for model partitioning, minimising single-inference latency as the
  sum of per-block compute and cut-tensor transfer times (Eq. 5).

Greedy reference implementations are provided for the ablation study
(DESIGN.md section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dnn.graph import Segment
from repro.dnn.layers import LAYER_CLASSES


@dataclass(frozen=True)
class ExecutorModel:
    """Abstract executor seen by the DP: a device (global tier) or a
    processor (local tier).

    ``rates`` are per-layer-class compute rates [FLOPs/s];
    ``comm_bytes_s`` the rate at which input data reaches this executor
    (network ``beta`` globally, memory fabric ``mu`` locally;
    ``float('inf')`` for the executor already holding the data);
    ``fixed_s`` the fixed per-task cost (setup + message latency).
    """

    ident: str
    rates: Mapping[str, float]
    comm_bytes_s: float
    fixed_s: float = 0.0
    #: Per-operator dispatch time of this executor.
    dispatch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_bytes_s <= 0:
            raise ValueError(f"{self.ident}: non-positive comm rate")
        if self.fixed_s < 0 or self.dispatch_s < 0:
            raise ValueError(f"{self.ident}: negative fixed/dispatch cost")
        for cls, rate in self.rates.items():
            if rate <= 0:
                raise ValueError(f"{self.ident}: non-positive rate for {cls}")

    def compute_seconds(self, flops_by_class: Mapping[str, int], num_ops: int = 0) -> float:
        seconds = num_ops * self.dispatch_s
        for cls, flops in flops_by_class.items():
            if flops:
                seconds += flops / self.rates[cls]
        return seconds

    def comm_seconds(self, size_bytes: float) -> float:
        return size_bytes / self.comm_bytes_s


def scale_flops(flops_by_class: Mapping[str, int], factor: float) -> Dict[str, int]:
    """Scale a FLOPs breakdown by a share factor."""
    if factor < 0:
        raise ValueError(f"negative scale factor {factor}")
    return {cls: int(flops * factor) for cls, flops in flops_by_class.items() if flops}


# --------------------------------------------------------------------------
# Data partitioning: subset-sum share allocation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SharePlan:
    """Result of the data-partitioning DP."""

    shares: Tuple[float, ...]  # per executor, summing to 1; zeros allowed
    makespan_s: float

    @property
    def active_executors(self) -> int:
        return sum(1 for share in self.shares if share > 0)


def data_shares_dp(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
    num_ops: int = 0,
    inflation: Callable[[float], float] = lambda share: 1.0,
) -> SharePlan:
    """Distribute workload quanta over executors minimising makespan.

    The workload is cut into ``quanta`` equal units (the subset-sum
    granularity).  Executor ``e`` receiving ``q`` units finishes at::

        fixed_e + dispatch_e * num_ops
        + (q/Q) * input_bytes / comm_e
        + inflation(q/Q) * (q/Q) * T_e

    where ``T_e`` is the executor's full-workload compute time.  Every
    active executor dispatches *all* ``num_ops`` operators of the tiled
    range regardless of its share -- the term that makes very thin
    shares counter-productive.  The DP table ``best[i][r]`` holds the
    minimal makespan using executors ``i..`` for ``r`` remaining units
    -- the back-propagating block-by-block search the paper describes,
    in O(n_executors * quanta^2).
    """
    if quanta < 1:
        raise ValueError(f"quanta must be positive, got {quanta}")
    if not executors:
        raise ValueError("no executors")
    count = len(executors)
    full_compute = [executor.compute_seconds(flops_by_class) for executor in executors]

    def finish_time(executor_idx: int, units: int) -> float:
        if units == 0:
            return 0.0
        share = units / quanta
        executor = executors[executor_idx]
        comm = executor.comm_seconds(share * input_bytes)
        dispatch = num_ops * executor.dispatch_s
        return (
            executor.fixed_s
            + dispatch
            + comm
            + inflation(share) * share * full_compute[executor_idx]
        )

    INF = float("inf")
    # best[i][r]: minimal makespan distributing r units over executors i..
    best = [[INF] * (quanta + 1) for _ in range(count + 1)]
    choice = [[0] * (quanta + 1) for _ in range(count + 1)]
    best[count][0] = 0.0
    for i in range(count - 1, -1, -1):
        for r in range(quanta + 1):
            for q in range(r + 1):
                rest = best[i + 1][r - q]
                if rest == INF:
                    continue
                candidate = max(finish_time(i, q), rest)
                if candidate < best[i][r]:
                    best[i][r] = candidate
                    choice[i][r] = q
    shares: List[float] = []
    remaining = quanta
    for i in range(count):
        q = choice[i][remaining]
        shares.append(q / quanta)
        remaining -= q
    return SharePlan(shares=tuple(shares), makespan_s=best[0][quanta])


def data_shares_greedy(
    flops_by_class: Mapping[str, int],
    input_bytes: int,
    executors: Sequence[ExecutorModel],
) -> SharePlan:
    """Proportional-to-rate allocation (MoDNN-style reference heuristic).

    Ignores fixed costs and communication; used as the ablation
    baseline for the DP and as the MoDNN distribution rule.
    """
    del input_bytes
    rates = [executor.compute_seconds(flops_by_class) for executor in executors]
    inv = [1.0 / r if r > 0 else 0.0 for r in rates]
    total = sum(inv)
    if total == 0:
        raise ValueError("all executors have zero rate")
    shares = tuple(v / total for v in inv)
    makespan = max(
        executor.fixed_s + share * rate
        for executor, share, rate in zip(executors, shares, rates)
        if share > 0
    )
    return SharePlan(shares=shares, makespan_s=makespan)


# --------------------------------------------------------------------------
# Model partitioning: cut placement + block assignment
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelinePlan:
    """Result of the model-partitioning DP."""

    #: (seg_lo, seg_hi, executor index) per block, in execution order.
    blocks: Tuple[Tuple[int, int, int], ...]
    latency_s: float
    bottleneck_s: float  # slowest stage time; 1/throughput for streams

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


def pipeline_cuts_dp(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int = 0,
    return_bytes_weight: float = 1.0,
    max_segments: int = 48,
) -> PipelinePlan:
    """Optimal contiguous-block pipeline over heterogeneous executors.

    ``dp[i][e]`` is the minimal latency to finish segments ``[0..i]``
    with the block containing segment ``i`` running on executor ``e``;
    transitions scan the previous cut point and executor.  Transfers
    charge the cut tensor at the *receiving* executor's communication
    rate (the data must reach it), plus its fixed message cost.  The
    final result returns to ``source_executor``.

    Long segment chains (ResNet-152 has >100) are coarsened to at most
    ``max_segments`` candidates by merging the cheapest neighbours --
    this preserves every high-value cut while bounding the O(n^2 m^2)
    scan; the paper's block-by-block convergence does the same thing.
    """
    if not segments:
        raise ValueError("no segments")
    if not executors:
        raise ValueError("no executors")
    if not 0 <= source_executor < len(executors):
        raise ValueError(f"bad source executor {source_executor}")

    spans = _coarsen(segments, max_segments)
    n = len(spans)
    m = len(executors)
    compute = [
        [executors[e].compute_seconds(span_flops, span_ops) for e in range(m)]
        for span_flops, _, _, _, span_ops in spans
    ]
    # prefix compute sums per executor for O(1) block cost
    prefix = [[0.0] * (n + 1) for _ in range(m)]
    for e in range(m):
        for i in range(n):
            prefix[e][i + 1] = prefix[e][i] + compute[i][e]

    in_bytes = [span[1] for span in spans]
    out_bytes = [span[2] for span in spans]

    INF = float("inf")
    dp = [[INF] * m for _ in range(n)]
    parent: List[List[Optional[Tuple[int, int]]]] = [[None] * m for _ in range(n)]
    stage: List[List[float]] = [[0.0] * m for _ in range(n)]

    for i in range(n):
        for e in range(m):
            block_time = prefix[e][i + 1] - prefix[e][0]
            if e == source_executor:
                entry = block_time
            else:
                entry = executors[e].fixed_s + executors[e].comm_seconds(in_bytes[0]) + block_time
            if entry < dp[i][e]:
                dp[i][e] = entry
                parent[i][e] = None
                stage[i][e] = entry
    for i in range(n):
        for e in range(m):
            for j in range(i):
                for pe in range(m):
                    if dp[j][pe] == INF or pe == e:
                        continue
                    block_time = prefix[e][i + 1] - prefix[e][j + 1]
                    transfer = executors[e].fixed_s + executors[e].comm_seconds(in_bytes[j + 1])
                    candidate = dp[j][pe] + transfer + block_time
                    if candidate < dp[i][e]:
                        dp[i][e] = candidate
                        parent[i][e] = (j, pe)
                        stage[i][e] = transfer + block_time

    best_e, best_total = 0, INF
    for e in range(m):
        if dp[n - 1][e] == INF:
            continue
        back = 0.0
        if e != source_executor:
            back = (
                executors[source_executor].fixed_s
                + executors[source_executor].comm_seconds(out_bytes[n - 1]) * return_bytes_weight
            )
        total = dp[n - 1][e] + back
        if total < best_total:
            best_total, best_e = total, e

    blocks: List[Tuple[int, int, int]] = []
    i, e = n - 1, best_e
    bottleneck = 0.0
    while True:
        link = parent[i][e]
        j = -1 if link is None else link[0]
        seg_lo = spans[j + 1][3][0]
        seg_hi = spans[i][3][1]
        blocks.append((seg_lo, seg_hi, e))
        bottleneck = max(bottleneck, stage[i][e])
        if link is None:
            break
        i, e = link
    blocks.reverse()
    return PipelinePlan(blocks=tuple(blocks), latency_s=best_total, bottleneck_s=bottleneck)


def pipeline_greedy(
    segments: Sequence[Segment],
    executors: Sequence[ExecutorModel],
    source_executor: int = 0,
) -> PipelinePlan:
    """Reference heuristic: run everything on the single fastest executor.

    This is what a no-search strategy would do; the ablation bench
    compares its plan quality against :func:`pipeline_cuts_dp`.
    """
    total = {cls: 0 for cls in LAYER_CLASSES}
    total_ops = sum(seg.num_ops for seg in segments)
    for seg in segments:
        for cls, flops in seg.flops_by_class.items():
            total[cls] = total.get(cls, 0) + flops
    best_e, best_time = source_executor, float("inf")
    for e, executor in enumerate(executors):
        time = executor.compute_seconds(total, total_ops)
        if e != source_executor:
            time += executor.fixed_s + executor.comm_seconds(segments[0].in_bytes)
            time += executors[source_executor].comm_seconds(segments[-1].out_bytes)
        if time < best_time:
            best_time, best_e = time, e
    block = (segments[0].index, segments[-1].index, best_e)
    return PipelinePlan(blocks=(block,), latency_s=best_time, bottleneck_s=best_time)


def _coarsen(
    segments: Sequence[Segment], max_segments: int
) -> List[Tuple[Dict[str, int], int, int, Tuple[int, int], int]]:
    """Merge adjacent segments until at most ``max_segments`` spans remain.

    Each span is (flops_by_class, in_bytes, out_bytes, (seg_lo, seg_hi),
    num_ops).  Pairs with the smallest combined FLOPs merge first, so
    the coarse chain keeps the expensive regions separable.
    """
    spans = [
        (
            dict(seg.flops_by_class),
            seg.in_bytes,
            seg.out_bytes,
            (seg.index, seg.index),
            seg.num_ops,
        )
        for seg in segments
    ]
    while len(spans) > max_segments:
        best_idx, best_cost = 0, float("inf")
        for idx in range(len(spans) - 1):
            cost = sum(spans[idx][0].values()) + sum(spans[idx + 1][0].values())
            if cost < best_cost:
                best_cost, best_idx = cost, idx
        left, right = spans[best_idx], spans[best_idx + 1]
        merged_flops = dict(left[0])
        for cls, flops in right[0].items():
            merged_flops[cls] = merged_flops.get(cls, 0) + flops
        spans[best_idx : best_idx + 2] = [
            (merged_flops, left[1], right[2], (left[3][0], right[3][1]), left[4] + right[4])
        ]
    return spans

"""Plan executor: drives an :class:`ExecutionPlan` through the
discrete-event simulator, walking the scheduler FSM of Fig. 4.

The executor is strategy-agnostic: HiDP plans and baseline plans run
through the identical machinery, so measured differences come only
from the decisions, never from the harness.

The FSM runs from the plan's own physical leader
(:attr:`~repro.core.plans.ExecutionPlan.leader`): the probe
round-trips, the offload fan-out, the result merge and the
``dse_overhead_s`` scheduler-CPU charge all land on that device, so a
sharded scheduler whose shards elect distinct leaders genuinely
spreads controller work across boards.  Plans without a recorded
leader (legacy) fall back to the cluster's ``devices[0]``,
byte-identically.

Timeline of one request (leader FSM):

1. ``analyze``        -- availability probe round-trips to every node.
2. ``explore``        -- DSE overhead charged as a busy interval on the
                          leader's scheduling CPU (the paper's ~15 ms).
3. ``global_offload`` -- workload payloads leave over the WLAN.
4. ``local_map``      -- per-node local DSE overhead.
5. ``execute``        -- compute tasks queue on processor stations;
                          intermediate tensors move; results gather.
6. back to ``global_offload`` for the merge, then ``analyze``.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.comm.network import STATUS_PACKET_BYTES
from repro.faults import DeviceLostError
from repro.core.fsm import (
    FSMTrace,
    STATE_ANALYZE,
    STATE_EXECUTE,
    STATE_EXPLORE,
    STATE_MAP,
    STATE_OFFLOAD,
)
from repro.core.plans import (
    ExecutionPlan,
    LOCAL_DATA,
    LOCAL_PIPELINE,
    LOCAL_SINGLE,
    LOCAL_STAGED,
    LocalExec,
    MODE_DATA,
    MODE_LOCAL,
    MODE_MODEL,
    NodeAssignment,
)
from repro.metrics.results import InferenceResult
from repro.platform.processor import KIND_CPU
from repro.sim.engine import Event, Timeout
from repro.sim.runtime import SimRuntime
from repro.sim.trace import TRACE_FULL
from repro.workloads.requests import InferenceRequest

#: Local DSE overhead charged on each node that runs a local search.
LOCAL_MAP_OVERHEAD_S = 0.002
#: Result merge overhead on the leader.
MERGE_OVERHEAD_S = 0.001

#: A cooperative-preemption checkpoint: a generator function yielded
#: from at plan-segment boundaries.  It yields nothing when execution
#: may continue, or waits on whatever events (slot re-grants...) must
#: resolve before the next segment starts.
Checkpoint = Callable[[], Generator[Event, None, None]]


class _TaskSpec:
    """One local task, compiled to flat constants for the fast path.

    Everything a fused task flow touches per execution -- the station,
    its FIFO resource, the memoised durations and the record arguments
    -- resolved once per (plan, run) so the per-serve generators do no
    graph walks, no dict sums and no attribute chains.  Values mirror
    exactly what the reference arm recomputes each execution.
    """

    __slots__ = (
        "station",
        "resource",
        "busy_key",
        "in_s",
        "duration",
        "out_s",
        "label",
        "total_flops",
        "device",
        "processor",
    )

    def __init__(self, station, in_s, duration, out_s, label, total_flops):
        self.station = station
        self.resource = station._resource
        self.busy_key = station.key
        self.in_s = in_s
        self.duration = duration
        self.out_s = out_s
        self.label = label
        self.total_flops = total_flops
        self.device = station.device.name
        self.processor = station.processor.name


class _CompiledLocal:
    """A :class:`LocalExec` compiled against one runtime's stations."""

    __slots__ = ("device", "label", "mode", "specs", "stages", "tail")

    def __init__(self, device, label, mode, specs=None, stages=None, tail=None):
        self.device = device
        self.label = label
        self.mode = mode
        self.specs = specs
        self.stages = stages
        self.tail = tail


def _child_task_flow(env, runtime, spec, faults, device_name, segment):
    """Process: one fan-out child (tile or stage task), fully fused.

    The body is ``ProcessorStation.run_task`` flattened around the
    compiled :class:`_TaskSpec` constants, bracketed by the input and
    output hand-off timeouts -- zero delegated generators, so every
    resume of the hottest simulated flow activates exactly one frame.
    Keep the hold protocol in sync with ``run_task`` (commit backlog,
    request, busy-record, release; un-commit on an abandoned claim).
    Faults follow the fan-out sentinel contract: gate at flow start,
    *return* the loss as the process value.
    """
    if faults is not None and not faults.device_ok(device_name):
        return DeviceLostError(device_name, segment, env.now)
    yield Timeout(env, spec.in_s)
    station = spec.station
    duration = spec.duration
    factor = station.throttle.factor
    if factor != 1.0:
        duration = duration * factor
    committed = station.committed_until
    now = env.now
    station.committed_until = (committed if committed > now else now) + duration
    runtime._load_version += 1
    resource = spec.resource
    request = resource.request()
    try:
        yield request
    except BaseException:
        resource.release(request)
        station.committed_until -= duration
        runtime._load_version += 1
        raise
    start = env.now
    try:
        yield Timeout(env, duration)
    finally:
        end = env.now
        runtime.busy.record(spec.busy_key, start, end, spec.label)
        resource.release(request)
    runtime.flops_log.record(end, spec.total_flops, spec.device, spec.processor, spec.label)
    yield Timeout(env, spec.out_s)


def _probe_round_trip(env, channel, leader, dst):
    """Process: one availability status round trip, transmits fused.

    The body is ``NetworkChannel.transmit`` flattened twice (request
    leg, reply leg) -- ``src != dst`` always holds here, and bandwidth/
    latency are read live at grant time exactly like the reference, so
    degradation episodes land identically.  Keep in sync with
    ``transmit``.
    """
    resource = channel._resource
    log_record = channel._log.record
    request = resource.request()
    try:
        yield request
    except BaseException:
        resource.release(request)
        raise
    start = env.now
    try:
        yield Timeout(env, STATUS_PACKET_BYTES / channel._bandwidth_bytes_s)
    finally:
        resource.release(request)
    hold_end = env.now
    yield Timeout(env, channel._latency_s)
    log_record(
        start, env.now, STATUS_PACKET_BYTES, leader, dst, "status_request", hold_end=hold_end
    )
    request = resource.request()
    try:
        yield request
    except BaseException:
        resource.release(request)
        raise
    start = env.now
    try:
        yield Timeout(env, STATUS_PACKET_BYTES / channel._bandwidth_bytes_s)
    finally:
        resource.release(request)
    hold_end = env.now
    yield Timeout(env, channel._latency_s)
    log_record(
        start, env.now, STATUS_PACKET_BYTES, dst, leader, "status_reply", hold_end=hold_end
    )


class PlanExecutor:
    """Executes plans on a :class:`~repro.sim.runtime.SimRuntime`.

    ``charge_explore`` controls whether each request's global DSE
    overhead (``plan.dse_overhead_s``) is charged on the leader's
    scheduler CPU inside :meth:`execute`.  Serving schedulers that
    charge batched planning time at the dispatcher instead (one sweep
    amortised over the whole backlog) disable it to avoid paying the
    explore cost twice.
    """

    def __init__(
        self,
        runtime: SimRuntime,
        charge_local_map: bool = True,
        charge_explore: bool = True,
    ):
        self.runtime = runtime
        self.charge_local_map = charge_local_map
        self.charge_explore = charge_explore
        # FSM traces are per-request artefacts; aggregate-trace runs
        # skip them (results carry empty traces) like every other
        # per-entry record.
        self._record_fsm = runtime.trace_level == TRACE_FULL
        # The memos below ride the simulation fast path
        # (``REPRO_SIM_FASTPATH``), so the reference configuration keeps
        # the seed's recompute-per-execution cost profile.
        self._fast = runtime.env._fast
        # Task durations are pure functions of the (immutable) task and
        # its processor; serving runs execute the same cached plan's
        # tasks thousands of times.  Values pin the task so the id key
        # stays unambiguous.
        self._task_seconds: dict = {}
        # Intra-device transfer times, keyed by (device, size): the
        # same plan moves the same tensors every execution.
        self._devices = {device.name: device for device in runtime.cluster.devices}
        self._transfer_seconds: dict = {}
        # Compiled local-exec flows (fast path; see _compiled_local)
        # and the per-device scheduler-CPU station memo.
        self._compiled: dict = {}
        self._scheduler_stations: dict = {}

    def _local_transfer_seconds(self, device_name: str, size_bytes: int) -> float:
        key = (device_name, size_bytes)
        seconds = self._transfer_seconds.get(key)
        if seconds is None:
            seconds = self._devices[device_name].transfer_seconds(size_bytes)
            if self._fast:
                if len(self._transfer_seconds) > self.TASK_SECONDS_MAX:
                    self._transfer_seconds.clear()
                self._transfer_seconds[key] = seconds
        return seconds

    def _task_costs(self, station, task) -> tuple:
        """(duration, total FLOPs) of a task, memoised by task identity."""
        key = id(task)
        hit = self._task_seconds.get(key)
        if hit is not None and hit[0] is task:
            return hit[1], hit[2]
        duration = station.processor.task_seconds(
            task.flops_by_class, num_ops=task.num_ops, pinned=task.pinned
        )
        total_flops = sum(task.flops_by_class.values())
        if self._fast:
            self._task_seconds[key] = (task, duration, total_flops)
            if len(self._task_seconds) > self.TASK_SECONDS_MAX:
                self._task_seconds.pop(next(iter(self._task_seconds)))
        return duration, total_flops

    #: Bound on the task-duration memo (a serving process cycles
    #: through at most the plan cache's working set of tasks).
    TASK_SECONDS_MAX = 16384

    # Helpers ----------------------------------------------------------------

    def _scheduler_station(self, device_name: str):
        """The processor hosting the middleware controller (first CPU).

        Memoised per device on the fast path: the cluster's processor
        layout is fixed for the lifetime of a run.
        """
        station = self._scheduler_stations.get(device_name)
        if station is not None:
            return station
        device = self.runtime.cluster.device(device_name)
        station = None
        for proc in device.processors:
            if proc.kind == KIND_CPU:
                station = self.runtime.station(device_name, proc.name)
                break
        if station is None:
            station = self.runtime.station(device_name, device.processors[0].name)
        if self._fast:
            self._scheduler_stations[device_name] = station
        return station

    def _busy(self, device_name: str, seconds: float, label: str) -> Generator[Event, None, None]:
        """Charge controller overhead as busy time on the scheduler CPU.

        The CPU resource is held for the full overhead (an overhead
        shorter than the processor's setup time charges exactly the
        overhead, never the setup floor), so concurrent requests
        serialise on the controller instead of overlapping.
        """
        if seconds <= 0:
            return
        station = self._scheduler_station(device_name)
        if not self._fast:
            yield from station.run_overhead(seconds, label=label)
            return
        # run_overhead/_hold fused: identical hold protocol, two fewer
        # delegated generators (keep in sync with ProcessorStation._hold).
        runtime = self.runtime
        env = runtime.env
        factor = station.throttle.factor
        if factor != 1.0:
            seconds = seconds * factor
        committed = station.committed_until
        now = env.now
        station.committed_until = (committed if committed > now else now) + seconds
        runtime._load_version += 1
        resource = station._resource
        request = resource.request()
        try:
            yield request
        except BaseException:
            resource.release(request)
            station.committed_until -= seconds
            runtime._load_version += 1
            raise
        start = env.now
        try:
            yield Timeout(env, seconds)
        finally:
            runtime.busy.record(station.key, start, env.now, label)
            resource.release(request)

    def charge_overhead(
        self, device_name: str, seconds: float, label: str
    ) -> Generator[Event, None, None]:
        """Process: charge controller time on a device's scheduler CPU.

        Public entry point for schedulers that account planning work
        outside :meth:`execute` (e.g. batched co-planning charged once
        per backlog at the dispatcher).
        """
        yield from self._busy(device_name, seconds, label)

    def _pause_point(self, checkpoint: Optional[Checkpoint]) -> Generator[Event, None, None]:
        """Yield to the preemption checkpoint at a segment boundary.

        With no checkpoint installed this adds no events at all, so
        legacy runs stay byte-identical.
        """
        if checkpoint is not None:
            yield from checkpoint()

    def _check(self, faults, devices, segment: str) -> None:
        """Availability gate: fail the segment when a plan device left.

        Only called with fault injection armed (``runtime.faults`` set);
        raising :class:`~repro.faults.DeviceLostError` is the structured
        failed-segment event the recovery contract starts from.  The
        raise sites never hold a station or channel grant, so failing a
        segment releases nothing late and orphans no busy interval.
        """
        for name in devices:
            if not faults.device_ok(name):
                raise DeviceLostError(name, segment, self.runtime.env.now)

    def _probe(self, leader: str, faults=None) -> Generator[Event, None, None]:
        """Availability status round trips (Eq. 4) to every other node.

        With fault injection armed, nodes currently out of the cluster
        are skipped -- the probe *is* the availability detection, it
        cannot round-trip to a device that left.
        """
        env = self.runtime.env
        probes = []
        for device in self.runtime.cluster.devices:
            if device.name == leader:
                continue
            if faults is not None and not faults.device_ok(device.name):
                continue

            if self._fast:
                probes.append(
                    env.process(
                        _probe_round_trip(
                            env, self.runtime.network, leader, device.name
                        )
                    )
                )
                continue

            def round_trip(dst: str = device.name) -> Generator[Event, None, None]:
                yield from self.runtime.network.transmit(
                    leader, dst, STATUS_PACKET_BYTES, tag="status_request"
                )
                yield from self.runtime.network.transmit(
                    dst, leader, STATUS_PACKET_BYTES, tag="status_reply"
                )

            probes.append(env.process(round_trip()))
        if probes:
            yield env.all_of(probes)

    # Local execution ----------------------------------------------------------

    def _run_local(
        self, device_name: str, local: LocalExec, label: str, faults=None
    ) -> Generator[Event, None, None]:
        """Run one node's local execution (all four local modes).

        The fast path executes a compiled :class:`_CompiledLocal` --
        flat per-task constants, fused hold protocol, zero delegated
        generators on the sequential modes; the reference arm below
        keeps the seed structure as the executable spec.  Both arms
        produce identical event schedules (pinned by the cross-hatch
        matrix).

        Fault semantics: tile/stage fan-out children cannot raise (an
        exception in a child process would crash the event loop), so
        they gate availability at flow start and *return* the
        DeviceLostError as their process value; the parent collects
        every child -- in-flight work runs to completion and is
        charged -- and re-raises the first failure.  The sequential
        modes gate in the caller's own frame and raise directly.
        """
        if not self._fast:
            yield from self._run_local_reference(device_name, local, label, faults)
            return
        compiled = self._compiled_local(device_name, local, label)
        runtime = self.runtime
        env = runtime.env
        mode = compiled.mode
        if mode == LOCAL_DATA or mode == LOCAL_STAGED:
            segment = "tile" if mode == LOCAL_DATA else "stage"
            for stage in compiled.stages:
                children = [
                    env.process(
                        _child_task_flow(env, runtime, spec, faults, device_name, segment)
                    )
                    for spec in stage
                ]
                values = yield env.all_of(children)
                if faults is not None:
                    for value in values:
                        if isinstance(value, DeviceLostError):
                            raise value
            segment_specs = compiled.specs  # the data-mode tail, if any
        else:
            segment = "execute"
            segment_specs = compiled.specs  # single / pipeline task list
        for spec in segment_specs:
            if faults is not None:
                self._check(faults, (device_name,), segment)
            yield Timeout(env, spec.in_s)
            # ProcessorStation.run_task, fused over the compiled spec
            # (keep the hold protocol in sync with run_task/_hold).
            station = spec.station
            duration = spec.duration
            factor = station.throttle.factor
            if factor != 1.0:
                duration = duration * factor
            committed = station.committed_until
            now = env.now
            station.committed_until = (committed if committed > now else now) + duration
            runtime._load_version += 1
            resource = spec.resource
            request = resource.request()
            try:
                yield request
            except BaseException:
                resource.release(request)
                station.committed_until -= duration
                runtime._load_version += 1
                raise
            start = env.now
            try:
                yield Timeout(env, duration)
            finally:
                end = env.now
                runtime.busy.record(spec.busy_key, start, end, spec.label)
                resource.release(request)
            runtime.flops_log.record(
                end, spec.total_flops, spec.device, spec.processor, spec.label
            )

    def _compiled_local(self, device_name: str, local: LocalExec, label: str):
        """The compiled form of a local exec, memoised per run.

        Serving runs execute the same cached plan's locals thousands of
        times; resolving stations, durations and transfer times once
        per (plan, run) removes every per-serve recomputation.  Keyed
        by identity with the local pinned in the value (so an id reuse
        after eviction can never alias), revalidated against the
        device/label binding, which is fixed per assignment.
        """
        key = id(local)
        hit = self._compiled.get(key)
        if hit is not None and hit[0] is local:
            compiled = hit[1]
            if compiled.device == device_name and compiled.label == label:
                return compiled
        runtime = self.runtime

        def spec_of(task, with_out: bool) -> _TaskSpec:
            station = runtime.station(device_name, task.processor)
            duration, total_flops = self._task_costs(station, task)
            return _TaskSpec(
                station,
                self._local_transfer_seconds(device_name, task.input_bytes),
                duration,
                self._local_transfer_seconds(device_name, task.output_bytes)
                if with_out
                else 0.0,
                task.label or label,
                total_flops,
            )

        mode = local.mode
        if mode == LOCAL_DATA:
            compiled = _CompiledLocal(
                device_name,
                label,
                mode,
                specs=[spec_of(local.tail, False)] if local.tail is not None else [],
                stages=[[spec_of(task, True) for task in local.tasks]],
            )
        elif mode == LOCAL_STAGED:
            compiled = _CompiledLocal(
                device_name,
                label,
                mode,
                specs=[],
                stages=[[spec_of(task, True) for task in stage] for stage in local.stages],
            )
        elif mode == LOCAL_SINGLE:
            compiled = _CompiledLocal(
                device_name,
                label,
                mode,
                specs=[spec_of(local.tasks[0], False)],
            )
        else:  # pipeline
            compiled = _CompiledLocal(
                device_name,
                label,
                mode,
                specs=[spec_of(task, False) for task in local.tasks],
            )
        self._compiled[key] = (local, compiled)
        if len(self._compiled) > self.TASK_SECONDS_MAX:
            self._compiled.pop(next(iter(self._compiled)))
        return compiled

    def _run_local_reference(
        self, device_name: str, local: LocalExec, label: str, faults=None
    ) -> Generator[Event, None, None]:
        # Local tensor hand-offs are inlined single timeouts (exactly
        # what SimRuntime.local_transfer yields) with memoised transfer
        # times -- one fewer delegated generator per hand-off on the
        # hottest execution path.
        #
        # Fault semantics: tile/stage fan-out children cannot raise (an
        # exception in a child process would crash the event loop), so
        # they gate availability at flow start and *return* the
        # DeviceLostError as their process value; the parent collects
        # every child -- in-flight work runs to completion and is
        # charged -- and re-raises the first failure.  The sequential
        # modes gate in the caller's own frame and raise directly.
        env = self.runtime.env
        if local.mode == LOCAL_SINGLE:
            task = local.tasks[0]
            if faults is not None:
                self._check(faults, (device_name,), "execute")
            yield Timeout(env, self._local_transfer_seconds(device_name, task.input_bytes))
            station = self.runtime.station(device_name, task.processor)
            duration, total_flops = self._task_costs(station, task)
            yield from station.run_task(
                task.flops_by_class,
                label=task.label or label,
                pinned=task.pinned,
                num_ops=task.num_ops,
                duration=duration,
                total_flops=total_flops,
            )
            return
        if local.mode == LOCAL_DATA:
            children = []
            for task in local.tasks:

                def tile_flow(t=task) -> Generator[Event, None, None]:
                    if faults is not None and not faults.device_ok(device_name):
                        return DeviceLostError(device_name, "tile", env.now)
                    yield Timeout(env, self._local_transfer_seconds(device_name, t.input_bytes))
                    station = self.runtime.station(device_name, t.processor)
                    duration, total_flops = self._task_costs(station, t)
                    yield from station.run_task(
                        t.flops_by_class,
                        label=t.label or label,
                        pinned=t.pinned,
                        num_ops=t.num_ops,
                        duration=duration,
                        total_flops=total_flops,
                    )
                    yield Timeout(env, self._local_transfer_seconds(device_name, t.output_bytes))

                children.append(env.process(tile_flow()))
            values = yield env.all_of(children)
            if faults is not None:
                for value in values:
                    if isinstance(value, DeviceLostError):
                        raise value
            if local.tail is not None:
                if faults is not None:
                    self._check(faults, (device_name,), "tile")
                station = self.runtime.station(device_name, local.tail.processor)
                yield Timeout(
                    env,
                    self._local_transfer_seconds(device_name, local.tail.input_bytes),
                )
                duration, total_flops = self._task_costs(station, local.tail)
                yield from station.run_task(
                    local.tail.flops_by_class,
                    label=local.tail.label,
                    pinned=local.tail.pinned,
                    num_ops=local.tail.num_ops,
                    duration=duration,
                    total_flops=total_flops,
                )
            return
        if local.mode == LOCAL_STAGED:
            for stage in local.stages:
                children = []
                for task in stage:

                    def stage_flow(t=task) -> Generator[Event, None, None]:
                        if faults is not None and not faults.device_ok(device_name):
                            return DeviceLostError(device_name, "stage", env.now)
                        yield Timeout(
                            env,
                            self._local_transfer_seconds(device_name, t.input_bytes)
                        )
                        station = self.runtime.station(device_name, t.processor)
                        duration, total_flops = self._task_costs(station, t)
                        yield from station.run_task(
                            t.flops_by_class,
                            label=t.label or label,
                            pinned=t.pinned,
                            num_ops=t.num_ops,
                            duration=duration,
                            total_flops=total_flops,
                        )
                        yield Timeout(
                            env,
                            self._local_transfer_seconds(device_name, t.output_bytes)
                        )

                    children.append(env.process(stage_flow()))
                values = yield env.all_of(children)
                if faults is not None:
                    for value in values:
                        if isinstance(value, DeviceLostError):
                            raise value
            return
        # pipeline
        for task in local.tasks:
            if faults is not None:
                self._check(faults, (device_name,), "execute")
            yield Timeout(env, self._local_transfer_seconds(device_name, task.input_bytes))
            station = self.runtime.station(device_name, task.processor)
            duration, total_flops = self._task_costs(station, task)
            yield from station.run_task(
                task.flops_by_class,
                label=task.label or label,
                pinned=task.pinned,
                num_ops=task.num_ops,
                duration=duration,
                total_flops=total_flops,
            )

    def _map_overhead(self, device_name: str, local: LocalExec) -> Generator[Event, None, None]:
        """Charge the follower-side local DSE (Fig. 4 'Local: Map')."""
        if self.charge_local_map and len(local.tasks) > 1:
            yield from self._busy(device_name, LOCAL_MAP_OVERHEAD_S, "local_dse")

    # Global modes ---------------------------------------------------------------

    def _run_data_assignment(
        self,
        leader: str,
        assignment: NodeAssignment,
        trace: Optional[FSMTrace],
        faults=None,
    ) -> Generator[Event, None, None]:
        env = self.runtime.env
        if self._fast:
            # Fast arm: both NetworkChannel.transmit legs flattened
            # (src != dst holds on each guarded leg) and _map_overhead
            # inlined.  Bandwidth/latency are read live at grant time,
            # so degradation episodes land identically to the reference
            # arm below -- keep the two arms in sync.
            device = assignment.device
            channel = self.runtime.network
            if device != leader:
                if faults is not None:
                    self._check(faults, (device,), "offload")
                resource = channel._resource
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.release(request)
                    raise
                start = env.now
                try:
                    yield Timeout(
                        env, assignment.send_bytes / channel._bandwidth_bytes_s
                    )
                finally:
                    resource.release(request)
                hold_end = env.now
                yield Timeout(env, channel._latency_s)
                channel._log.record(
                    start,
                    env.now,
                    assignment.send_bytes,
                    leader,
                    device,
                    "workload",
                    hold_end=hold_end,
                )
            if trace is not None:
                trace.enter(env.now, STATE_MAP)
            if self.charge_local_map and len(assignment.local.tasks) > 1:
                yield from self._busy(device, LOCAL_MAP_OVERHEAD_S, "local_dse")
            if trace is not None:
                trace.enter(env.now, STATE_EXECUTE)
            yield from self._run_local(device, assignment.local, assignment.label, faults)
            if device != leader:
                if faults is not None:
                    self._check(faults, (device,), "result")
                resource = channel._resource
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.release(request)
                    raise
                start = env.now
                try:
                    yield Timeout(
                        env, assignment.return_bytes / channel._bandwidth_bytes_s
                    )
                finally:
                    resource.release(request)
                hold_end = env.now
                yield Timeout(env, channel._latency_s)
                channel._log.record(
                    start,
                    env.now,
                    assignment.return_bytes,
                    device,
                    leader,
                    "result",
                    hold_end=hold_end,
                )
            if trace is not None:
                trace.enter(env.now, STATE_ANALYZE)
            return
        if assignment.device != leader:
            if faults is not None:
                self._check(faults, (assignment.device,), "offload")
            yield from self.runtime.network.transmit(
                leader, assignment.device, assignment.send_bytes, tag="workload"
            )
        if trace is not None:
            trace.enter(env.now, STATE_MAP)
        yield from self._map_overhead(assignment.device, assignment.local)
        if trace is not None:
            trace.enter(env.now, STATE_EXECUTE)
        yield from self._run_local(
            assignment.device, assignment.local, assignment.label, faults
        )
        if assignment.device != leader:
            if faults is not None:
                self._check(faults, (assignment.device,), "result")
            yield from self.runtime.network.transmit(
                assignment.device, leader, assignment.return_bytes, tag="result"
            )
        if trace is not None:
            trace.enter(env.now, STATE_ANALYZE)

    def _guarded_assignment(
        self,
        leader: str,
        assignment: NodeAssignment,
        trace: Optional[FSMTrace],
        faults,
    ) -> Generator[Event, None, None]:
        """Child-process wrapper: failures become the process *value*.

        A raise inside a spawned child would crash the event loop, so
        the sentinel pattern applies -- catch, return, and let the
        fan-out parent re-raise after every sibling has drained.
        """
        try:
            yield from self._run_data_assignment(leader, assignment, trace, faults)
        except DeviceLostError as lost:
            return lost

    def _execute_data(
        self, leader: str, plan: ExecutionPlan, traces: List[FSMTrace], faults=None
    ) -> Generator[Event, None, None]:
        env = self.runtime.env
        children = []
        for assignment in plan.assignments:
            trace = None
            if self._record_fsm and assignment.device != leader:
                trace = FSMTrace(role="follower", node=assignment.device)
                trace.enter(env.now, STATE_ANALYZE)
                traces.append(trace)
            if faults is not None:
                children.append(
                    env.process(
                        self._guarded_assignment(leader, assignment, trace, faults)
                    )
                )
            else:
                children.append(
                    env.process(self._run_data_assignment(leader, assignment, trace))
                )
        values = yield env.all_of(children)
        if faults is not None:
            for value in values:
                if isinstance(value, DeviceLostError):
                    raise value

    def _execute_model(
        self,
        leader: str,
        plan: ExecutionPlan,
        traces: List[FSMTrace],
        checkpoint: Optional[Checkpoint] = None,
        faults=None,
    ) -> Generator[Event, None, None]:
        env = self.runtime.env
        previous = leader
        for index, assignment in enumerate(plan.assignments):
            if index > 0:
                # Pipeline-stage hand-off: a natural segment boundary.
                yield from self._pause_point(checkpoint)
            if faults is not None:
                self._check(faults, (previous, assignment.device), "stage")
            if assignment.device != previous:
                yield from self.runtime.network.transmit(
                    previous, assignment.device, assignment.send_bytes, tag="block"
                )
            trace = None
            if self._record_fsm and assignment.device != leader:
                trace = FSMTrace(role="follower", node=assignment.device)
                trace.enter(env.now, STATE_ANALYZE)
                trace.enter(env.now, STATE_MAP)
                traces.append(trace)
            yield from self._map_overhead(assignment.device, assignment.local)
            if trace is not None:
                trace.enter(env.now, STATE_EXECUTE)
            yield from self._run_local(
                assignment.device, assignment.local, assignment.label, faults
            )
            if trace is not None:
                trace.enter(env.now, STATE_ANALYZE)
            previous = assignment.device
        if previous != leader:
            if faults is not None:
                self._check(faults, (previous,), "result")
            yield from self.runtime.network.transmit(
                previous, leader, plan.assignments[-1].return_bytes, tag="result"
            )

    # Entry point -------------------------------------------------------------

    def execute(
        self,
        request: InferenceRequest,
        plan: ExecutionPlan,
        checkpoint: Optional[Checkpoint] = None,
    ) -> Generator[Event, None, InferenceResult]:
        """Process: run one request's plan; returns its result record.

        ``checkpoint`` installs a cooperative-preemption hook yielded
        from at segment boundaries (after the availability probe, after
        explore, between model-parallel pipeline stages, and before the
        final merge).  Data-parallel tile fan-outs run to completion --
        their children execute concurrently, so there is no coherent
        mid-flight boundary to pause at.

        With fault injection armed (``runtime.faults``), availability
        gates at every segment boundary turn a mid-plan device loss into
        :class:`~repro.faults.DeviceLostError`: partial work already on
        the timeline stays charged, every grant is released (the gates
        never hold one), and recovery is the *scheduler's* decision.
        """
        env = self.runtime.env
        faults = self.runtime.faults
        if faults is not None and not faults.armed:
            faults = None
        leader = plan.leader if plan.leader is not None else self.runtime.cluster.leader.name
        submitted = env.now
        if faults is not None:
            self._check(faults, (leader,), "dispatch")
        record_fsm = self._record_fsm
        traces: List[FSMTrace] = []
        trace: Optional[FSMTrace] = None
        if record_fsm:
            trace = FSMTrace(role="leader", node=leader)
            traces.append(trace)
            trace.enter(env.now, STATE_ANALYZE)
        yield from self._probe(leader, faults)
        if faults is not None:
            self._check(faults, (leader,) + plan.devices, "probe")
        started = env.now
        yield from self._pause_point(checkpoint)

        if record_fsm:
            trace.enter(env.now, STATE_EXPLORE)
        if self.charge_explore:
            yield from self._busy(leader, plan.dse_overhead_s, "global_dse")
        yield from self._pause_point(checkpoint)
        if faults is not None:
            self._check(faults, (leader,) + plan.devices, "explore")

        if record_fsm:
            trace.enter(env.now, STATE_OFFLOAD)
        if plan.mode == MODE_DATA:
            if record_fsm:
                trace.enter(env.now, STATE_MAP)
                trace.enter(env.now, STATE_EXECUTE)
            yield from self._execute_data(leader, plan, traces, faults)
        elif plan.mode == MODE_MODEL:
            if record_fsm:
                trace.enter(env.now, STATE_MAP)
                trace.enter(env.now, STATE_EXECUTE)
            yield from self._execute_model(leader, plan, traces, checkpoint, faults)
        else:  # MODE_LOCAL
            assignment = plan.assignments[0]
            if record_fsm:
                trace.enter(env.now, STATE_MAP)
            yield from self._map_overhead(leader, assignment.local)
            if record_fsm:
                trace.enter(env.now, STATE_EXECUTE)
            yield from self._run_local(leader, assignment.local, assignment.label, faults)

        yield from self._pause_point(checkpoint)
        if faults is not None:
            self._check(faults, (leader,), "merge")
        if record_fsm:
            trace.enter(env.now, STATE_OFFLOAD)  # gather & merge
        if plan.merge_exec is not None:
            yield from self._run_local(leader, plan.merge_exec, "merge")
        yield from self._busy(leader, MERGE_OVERHEAD_S, "merge")
        if record_fsm:
            trace.enter(env.now, STATE_ANALYZE)

        return InferenceResult(
            request_id=request.request_id,
            model=request.model,
            strategy=plan.strategy,
            submitted_s=submitted,
            started_s=started,
            completed_s=env.now,
            plan_mode=plan.mode,
            devices=plan.devices,
            traces=tuple(traces),
        )

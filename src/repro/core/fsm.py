"""Run-time scheduler finite state machine (paper Fig. 4).

The leader walks Analyze -> Explore -> Global:Offload -> Local:Map ->
Execute -> Global:Offload (gather/merge) -> Analyze; followers walk
Analyze -> Local:Map -> Execute -> report.  The plan executor drives
these transitions and records them, so tests can assert the controller
follows the published workflow exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

STATE_ANALYZE = "analyze"
STATE_EXPLORE = "explore"
STATE_OFFLOAD = "global_offload"
STATE_MAP = "local_map"
STATE_EXECUTE = "execute"

LEADER_STATES = (STATE_ANALYZE, STATE_EXPLORE, STATE_OFFLOAD, STATE_MAP, STATE_EXECUTE)

#: Legal transitions of the leader controller (Fig. 4, left).
LEADER_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    STATE_ANALYZE: (STATE_EXPLORE,),
    STATE_EXPLORE: (STATE_OFFLOAD,),
    STATE_OFFLOAD: (STATE_MAP, STATE_ANALYZE),
    STATE_MAP: (STATE_EXECUTE,),
    STATE_EXECUTE: (STATE_OFFLOAD,),
}

#: Legal transitions of the follower controller (Fig. 4, right).
FOLLOWER_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    STATE_ANALYZE: (STATE_MAP,),
    STATE_MAP: (STATE_EXECUTE,),
    STATE_EXECUTE: (STATE_ANALYZE,),
}


class FSMError(RuntimeError):
    """Raised on a transition the paper's controller does not allow."""


@dataclass
class FSMTrace:
    """A timed walk through controller states, validated on entry."""

    role: str  # "leader" | "follower"
    node: str
    entries: List[Tuple[float, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.role not in ("leader", "follower"):
            raise ValueError(f"unknown FSM role {self.role!r}")

    @property
    def _transitions(self) -> Dict[str, Tuple[str, ...]]:
        return LEADER_TRANSITIONS if self.role == "leader" else FOLLOWER_TRANSITIONS

    @property
    def state(self) -> str:
        return self.entries[-1][1] if self.entries else STATE_ANALYZE

    def enter(self, time: float, state: str) -> None:
        if state not in self._transitions:
            raise FSMError(f"{self.node}: unknown state {state!r}")
        if self.entries:
            current = self.entries[-1][1]
            if state not in self._transitions[current]:
                raise FSMError(f"{self.node}: illegal transition {current} -> {state}")
            if time < self.entries[-1][0] - 1e-12:
                raise FSMError(f"{self.node}: time went backwards entering {state}")
        elif state != STATE_ANALYZE:
            raise FSMError(f"{self.node}: controller must start in analyze, not {state}")
        self.entries.append((time, state))

    def states(self) -> Tuple[str, ...]:
        return tuple(state for _, state in self.entries)

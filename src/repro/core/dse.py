"""Design-space exploration agent: joint (depth, sigma, shares) search
for data partitioning, shared by the global and local tiers.

Splitting a deep CNN data-wise at its *last* spatial layer is useless:
the receptive field of a late row band covers nearly the whole input,
so every tile recomputes the entire network.  Fused-tile partitioning
therefore tiles only a *front range* of the network -- segments
``[lo..p]`` -- and executes the remainder ``[p+1..hi]`` unpartitioned
after the merge.  The depth cut ``p`` trades halo recomputation and
boundary-tensor size against how much work can run in parallel.

:func:`explore_data` sweeps candidate depth cuts, runs the subset-sum
share DP (:func:`repro.core.dp.data_shares_dp`) at each, materialises
the exact halo-inflated tiles, and returns the best found decision.
This is the paper's DSE agent "exploring the number of parallel
submodels sigma" -- identical machinery at the global tier (executors =
devices, comm = beta) and the local tier (executors = processors,
comm = mu).

:func:`exchange_costs` prices the alternative MoDNN-style semantics --
full-depth row bands with per-layer halo *exchange* instead of
recomputation -- used by the MoDNN baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.core.dp import ExecutorModel, data_shares_dp_batch
from repro.dnn.graph import DNNGraph, Segment
from repro.dnn.layers import LAYER_CLASSES
from repro.dnn.partition import (
    DataPartition,
    PartitionError,
    make_data_partition_from_shares,
    spatial_prefix,
)
from repro.dnn.segment_table import SegmentTable


@dataclass(frozen=True)
class DataModeDecision:
    """Outcome of the (depth, sigma, shares) search."""

    cut_segment: int  # inclusive end of the tiled range
    active: Tuple[Tuple[int, float], ...]  # (executor index, share)
    partition: DataPartition
    predicted_s: float
    tail_range: Optional[Tuple[int, int]]  # segments after the cut, or None

    @property
    def sigma(self) -> int:
        return len(self.active)


def candidate_cuts(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    max_cuts: int = 10,
    table: Optional[SegmentTable] = None,
) -> List[int]:
    """Candidate depth cuts: spatial-prefix segment ends, thinned to at
    most ``max_cuts`` positions evenly spaced by cumulative FLOPs."""
    lo, hi = seg_range
    prefix_lo, prefix_hi = spatial_prefix(graph, segments, seg_range)
    if prefix_hi < prefix_lo:
        return []
    positions = list(range(prefix_lo, prefix_hi + 1))
    if len(positions) <= max_cuts:
        return positions
    if table is not None:
        total = table.range_flops_total(prefix_lo, prefix_hi)
    else:
        total = sum(segments[idx].flops for idx in positions)
    if total == 0:
        step = max(1, len(positions) // max_cuts)
        return positions[::step][:max_cuts]
    chosen: List[int] = []
    acc = 0
    next_quantile = total / max_cuts
    for idx in positions:
        acc += segments[idx].flops
        if acc >= next_quantile or idx == positions[-1]:
            chosen.append(idx)
            next_quantile += total / max_cuts
    if positions[-1] not in chosen:
        chosen.append(positions[-1])
    return chosen


def _range_flops(
    segments: Sequence[Segment], lo: int, hi: int, table: Optional[SegmentTable] = None
) -> Dict[str, int]:
    """FLOPs-by-class of segments ``[lo..hi]`` via prefix sums."""
    if table is None:
        table = SegmentTable(segments)
    return table.range_flops(lo, hi)


def _range_ops(
    segments: Sequence[Segment], lo: int, hi: int, table: Optional[SegmentTable] = None
) -> int:
    """Operator count of segments ``[lo..hi]`` via prefix sums."""
    if table is None:
        table = SegmentTable(segments)
    return table.range_ops(lo, hi)


def _data_share_items(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    max_cuts: int,
    table: SegmentTable,
) -> Tuple[List[int], List[Tuple[Dict[str, int], int, int]]]:
    """The (valid cuts, share-DP workload items) of one data search.

    Separated from :func:`explore_data` so batched callers can gather
    the items of *many* searches and price them in a single
    :func:`data_shares_dp_batch` sweep.
    """
    lo, _ = seg_range
    cuts = candidate_cuts(graph, segments, seg_range, max_cuts, table=table)
    valid_cuts = [cut for cut in cuts if table.range_flops_total(lo, cut) != 0]
    entry_bytes = segments[lo].in_spec.size_bytes if segments else 0
    items = [
        (
            table.range_flops(lo, cut),
            entry_bytes + segments[cut].out_spec.size_bytes,
            table.range_ops(lo, cut),
        )
        for cut in valid_cuts
    ]
    return valid_cuts, items


def _select_data_decision(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    executors: Sequence[ExecutorModel],
    valid_cuts: Sequence[int],
    items: Sequence[Tuple[Dict[str, int], int, int]],
    share_plans: Sequence["SharePlan"],
    tail_seconds: Optional[Callable[[Tuple[int, int]], float]],
    min_sigma: int,
    table: SegmentTable,
) -> Optional[DataModeDecision]:
    """Pick the best decision from priced candidate cuts (exact tiles)."""
    lo, hi = seg_range
    if tail_seconds is None:

        def tail_seconds(tail_range: Tuple[int, int]) -> float:
            return executors[0].compute_seconds(
                table.range_flops(tail_range[0], tail_range[1]),
                table.range_ops(tail_range[0], tail_range[1]),
            )

    best: Optional[DataModeDecision] = None
    for cut, (tile_flops, _, tile_ops), share_plan in zip(valid_cuts, items, share_plans):
        active = [(idx, share) for idx, share in enumerate(share_plan.shares) if share > 0]
        if len(active) < max(min_sigma, 1):
            continue
        if len(active) == 1 and min_sigma <= 1:
            # Degenerate: single executor; tiles are pointless but legal.
            continue
        try:
            partition = make_data_partition_from_shares(
                graph,
                [share for _, share in active],
                segments=segments,
                seg_range=(lo, cut),
            )
        except PartitionError:
            continue
        if partition.num_tiles != len(active):
            continue
        # Exact makespan from materialised (halo-inflated) tiles.
        worst = 0.0
        for (executor_idx, _), tile in zip(active, partition.tiles):
            executor = executors[executor_idx]
            wire = tile.input_bytes + tile.output_bytes
            finish = (
                executor.fixed_s
                + executor.comm_seconds(wire)
                + executor.compute_seconds(tile.flops_by_class, tile_ops)
            )
            worst = max(worst, finish)
        predicted = worst
        tail_range: Optional[Tuple[int, int]] = None
        if cut < hi:
            tail_range = (cut + 1, hi)
            predicted += tail_seconds(tail_range)
        if best is None or predicted < best.predicted_s:
            best = DataModeDecision(
                cut_segment=cut,
                active=tuple(active),
                partition=partition,
                predicted_s=predicted,
                tail_range=tail_range,
            )
    return best


def explore_data(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
    tail_seconds: Optional[Callable[[Tuple[int, int]], float]] = None,
    max_cuts: int = 10,
    min_sigma: int = 1,
    table: Optional[SegmentTable] = None,
) -> Optional[DataModeDecision]:
    """Best data-partitioning decision over depth cuts and share splits.

    ``tail_seconds`` prices the unpartitioned remainder (defaults to
    executor 0 -- the data holder -- computing it).  Decisions whose
    share DP activates fewer than ``min_sigma`` executors are skipped
    (``min_sigma=2`` forces a genuinely distributed decision and leaves
    the sigma=1 case to the caller).

    ``table`` supplies O(1) range costs over ``segments``; pass the
    caller's table (e.g. ``graph.segment_table()``) to avoid rebuilding
    prefix sums per call.
    """
    if table is None:
        table = SegmentTable(segments)
    valid_cuts, items = _data_share_items(graph, segments, seg_range, max_cuts, table)
    # One batched share-DP sweep prices every candidate cut at once.
    share_plans = data_shares_dp_batch(items, executors, quanta=quanta)
    return _select_data_decision(
        graph, segments, seg_range, executors, valid_cuts, items, share_plans,
        tail_seconds, min_sigma, table,
    )


@dataclass(frozen=True)
class DataSearchSpec:
    """One (graph, segment range) data-partitioning search, for
    :func:`explore_data_batch`.  Field semantics match the keyword
    arguments of :func:`explore_data`."""

    graph: DNNGraph
    segments: Sequence[Segment]
    seg_range: Tuple[int, int]
    table: SegmentTable
    tail_seconds: Optional[Callable[[Tuple[int, int]], float]] = None
    min_sigma: int = 1
    max_cuts: int = 10


def explore_data_batch(
    specs: Sequence[DataSearchSpec],
    executors: Sequence[ExecutorModel],
    quanta: int = 20,
) -> List[Optional[DataModeDecision]]:
    """Run :func:`explore_data` for many searches against the same
    executor set in one batched share-DP sweep.

    This is the serving co-planner's kernel: a backlog of concurrent
    requests (one spec per distinct model) prices *all* of its candidate
    depth cuts in a single :func:`data_shares_dp_batch` call, paying the
    numpy dispatch overhead once per backlog instead of once per
    request.  Results are identical to per-spec :func:`explore_data`
    calls (each item's DP is independent of its batch neighbours).
    """
    gathered = [
        _data_share_items(spec.graph, spec.segments, spec.seg_range, spec.max_cuts, spec.table)
        for spec in specs
    ]
    all_items = [item for _, items in gathered for item in items]
    share_plans = data_shares_dp_batch(all_items, executors, quanta=quanta)
    decisions: List[Optional[DataModeDecision]] = []
    offset = 0
    for spec, (valid_cuts, items) in zip(specs, gathered):
        plans = share_plans[offset : offset + len(items)]
        offset += len(items)
        decisions.append(
            _select_data_decision(
                spec.graph, spec.segments, spec.seg_range, executors,
                valid_cuts, items, plans, spec.tail_seconds, spec.min_sigma, spec.table,
            )
        )
    return decisions


@dataclass(frozen=True)
class ExchangeDecision:
    """Outcome of the local (intra-device) exchange-semantics search.

    Unlike the FTP decision, tiles carry *exact* proportional FLOPs (no
    halo recompute); ``exchange_equiv_bytes`` is the per-boundary halo
    traffic plus a byte-equivalent of the per-layer sync latency, to be
    charged over the memory fabric.
    """

    cut_segment: int
    active: Tuple[Tuple[int, float], ...]  # (executor index, share)
    per_tile_flops: Tuple[Dict[str, int], ...]
    exchange_equiv_bytes: int
    predicted_s: float
    tail_range: Optional[Tuple[int, int]]

    @property
    def sigma(self) -> int:
        return len(self.active)


#: Per-graph memo of each segment's halo contribution (bytes, events);
#: keyed weakly so throwaway graphs do not pin cache entries.
_HALO_CACHE: "WeakKeyDictionary[DNNGraph, Dict[Tuple[str, ...], Tuple[int, int]]]" = (
    WeakKeyDictionary()
)


def _segment_halo(graph: DNNGraph, seg: Segment) -> Tuple[int, int]:
    """(halo bytes, exchange events) contributed by one segment's layers."""
    per_graph = _HALO_CACHE.setdefault(graph, {})
    entry = per_graph.get(seg.layer_names)
    if entry is None:
        halo_bytes = 0
        events = 0
        for name in seg.layer_names:
            layer = graph.layer(name)
            if not layer.is_spatial or layer.kernel <= 1 or not layer.inputs:
                continue
            producer_spec = graph.spec(layer.inputs[0])
            halo_bytes += producer_spec.rows_bytes(layer.kernel - 1)
            events += 1
        entry = (halo_bytes, events)
        per_graph[seg.layer_names] = entry
    return entry


#: Per-graph memo of whole-range equivalent bytes, valid only for the
#: graph's memoised segment chain (identity-checked by the caller).
_EQUIV_CACHE: "WeakKeyDictionary[DNNGraph, Dict[Tuple[int, int, float, float], int]]" = (
    WeakKeyDictionary()
)


def exchange_equiv_bytes(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    latency_s: float,
    bandwidth_bytes_s: float,
) -> int:
    """Per-boundary halo traffic of a range, with per-layer sync latency
    folded in as equivalent bytes (so a single transfer charge prices it).

    Range results are memoised when ``segments`` is the graph's own
    memoised chain (the common case: the local DSE re-prices the same
    ranges every stage and every plan).
    """
    lo, hi = seg_range
    if segments is graph.segments():
        cache = _EQUIV_CACHE.setdefault(graph, {})
        key = (lo, hi, latency_s, bandwidth_bytes_s)
        value = cache.get(key)
        if value is None:
            value = _exchange_equiv_bytes_walk(
                graph, segments, lo, hi, latency_s, bandwidth_bytes_s
            )
            cache[key] = value
        return value
    return _exchange_equiv_bytes_walk(graph, segments, lo, hi, latency_s, bandwidth_bytes_s)


def _exchange_equiv_bytes_walk(
    graph: DNNGraph,
    segments: Sequence[Segment],
    lo: int,
    hi: int,
    latency_s: float,
    bandwidth_bytes_s: float,
) -> int:
    halo_bytes = 0
    events = 0
    for seg in segments[lo : hi + 1]:
        seg_bytes, seg_events = _segment_halo(graph, seg)
        halo_bytes += seg_bytes
        events += seg_events
    return halo_bytes + int(2 * events * latency_s * bandwidth_bytes_s)


def _exchange_share_items(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    max_cuts: int,
    table: SegmentTable,
) -> Tuple[List[int], List[Tuple[Dict[str, int], int, int]]]:
    """The (valid cuts, share-DP workload items) of one exchange search.

    Separated from :func:`explore_data_exchange` so the staged local
    search can gather the items of *every* reachable stage start and
    price them in a single :func:`data_shares_dp_batch` sweep
    (:class:`StagedExchangeSearch`).
    """
    lo, _ = seg_range
    cuts = candidate_cuts(graph, segments, seg_range, max_cuts, table=table)
    valid_cuts = [cut for cut in cuts if table.range_flops_total(lo, cut) != 0]
    entry_bytes = segments[lo].in_spec.size_bytes if segments else 0
    items = [
        (
            table.range_flops(lo, cut),
            entry_bytes + segments[cut].out_spec.size_bytes,
            table.range_ops(lo, cut),
        )
        for cut in valid_cuts
    ]
    return valid_cuts, items


def _select_exchange_decision(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    executors: Sequence[ExecutorModel],
    valid_cuts: Sequence[int],
    items: Sequence[Tuple[Dict[str, int], int, int]],
    share_plans: Sequence["SharePlan"],
    intra_latency_s: float,
    intra_bw_bytes_s: float,
    tail_seconds: Optional[Callable[[Tuple[int, int]], float]],
    min_sigma: int,
    table: SegmentTable,
) -> Optional[ExchangeDecision]:
    """Pick the best exchange decision from priced candidate cuts."""
    lo, hi = seg_range
    if tail_seconds is None:

        def tail_seconds(tail_range: Tuple[int, int]) -> float:
            return executors[0].compute_seconds(
                table.range_flops(tail_range[0], tail_range[1]),
                table.range_ops(tail_range[0], tail_range[1]),
            )

    best: Optional[ExchangeDecision] = None
    for cut, (chunk_flops, wire, chunk_ops), share_plan in zip(valid_cuts, items, share_plans):
        active = [(idx, share) for idx, share in enumerate(share_plan.shares) if share > 0]
        if len(active) < max(min_sigma, 1):
            continue
        # Height feasibility: every tile needs at least one output row.
        prefix_lo, prefix_hi = spatial_prefix(graph, segments, (lo, cut))
        if prefix_hi < lo:
            continue
        out_height = graph.spec(segments[prefix_hi].layer_names[-1]).height
        if out_height < len(active):
            continue
        equiv = exchange_equiv_bytes(
            graph, segments, (lo, prefix_hi), intra_latency_s, intra_bw_bytes_s
        )
        per_tile = []
        worst = 0.0
        for slot, (executor_idx, share) in enumerate(active):
            executor = executors[executor_idx]
            tile_flops = {cls: int(value * share) for cls, value in chunk_flops.items()}
            per_tile.append(tile_flops)
            boundaries = (1 if slot > 0 else 0) + (1 if slot < len(active) - 1 else 0)
            finish = (
                executor.fixed_s
                + executor.comm_seconds(share * wire + boundaries * equiv)
                + executor.compute_seconds(tile_flops, chunk_ops)
            )
            worst = max(worst, finish)
        predicted = worst
        tail_range: Optional[Tuple[int, int]] = None
        if cut < hi:
            tail_range = (cut + 1, hi)
            predicted += tail_seconds(tail_range)
        if best is None or predicted < best.predicted_s:
            best = ExchangeDecision(
                cut_segment=cut,
                active=tuple(active),
                per_tile_flops=tuple(per_tile),
                exchange_equiv_bytes=equiv,
                predicted_s=predicted,
                tail_range=tail_range,
            )
    return best


def explore_data_exchange(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    executors: Sequence[ExecutorModel],
    intra_latency_s: float,
    intra_bw_bytes_s: float,
    quanta: int = 10,
    tail_seconds: Optional[Callable[[Tuple[int, int]], float]] = None,
    max_cuts: int = 10,
    min_sigma: int = 2,
    table: Optional[SegmentTable] = None,
) -> Optional[ExchangeDecision]:
    """Best intra-device data split with per-layer halo exchange.

    Same (depth, sigma, shares) search as :func:`explore_data`, but
    tiles stay resident through the chunk and swap halo rows over the
    memory fabric instead of recomputing them -- the semantics that
    makes thin CPU tiles viable on small feature maps.
    """
    if table is None:
        table = SegmentTable(segments)
    valid_cuts, items = _exchange_share_items(graph, segments, seg_range, max_cuts, table)
    # One batched share-DP sweep prices every candidate cut at once.
    share_plans = data_shares_dp_batch(items, executors, quanta=quanta)
    return _select_exchange_decision(
        graph, segments, seg_range, executors, valid_cuts, items, share_plans,
        intra_latency_s, intra_bw_bytes_s, tail_seconds, min_sigma, table,
    )


class StagedExchangeSearch:
    """Batched pricing for the staged (chunk-wise) local data search.

    The staged search consumes a segment range front to back: each
    stage picks a depth cut for the remaining range ``[start..hi]`` and
    recurses on the tail ``[cut+1..hi]``.  Run per stage, every
    iteration pays one share-DP sweep; this helper instead walks the
    *reachable stage starts* up front (breadth-first over candidate
    cuts, bounded by ``max_stages``), prices every (start, cut) item in
    a single :func:`data_shares_dp_batch` sweep, and then resolves each
    visited start's decision lazily from the pre-priced plans --
    byte-identical to per-stage :func:`explore_data_exchange` calls,
    because each item's DP is independent of its batch neighbours.
    """

    def __init__(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        executors: Sequence[ExecutorModel],
        intra_latency_s: float,
        intra_bw_bytes_s: float,
        quanta: int = 10,
        tail_seconds: Optional[Callable[[Tuple[int, int]], float]] = None,
        max_cuts: int = 10,
        min_sigma: int = 2,
        table: Optional[SegmentTable] = None,
        max_stages: int = 8,
    ):
        lo, hi = seg_range
        if table is None:
            table = SegmentTable(segments)
        self._graph = graph
        self._segments = segments
        self._hi = hi
        self._executors = executors
        self._intra_latency_s = intra_latency_s
        self._intra_bw_bytes_s = intra_bw_bytes_s
        self._tail_seconds = tail_seconds
        self._min_sigma = min_sigma
        self._table = table
        # Breadth-first reachability: stage k+1 can only start at
        # ``cut + 1`` for a candidate cut of a stage-k start.
        gathered: "Dict[int, Tuple[List[int], List[Tuple[Dict[str, int], int, int]]]]" = {}
        frontier = [lo]
        seen = {lo}
        depth = 0
        while frontier and depth < max_stages:
            next_frontier: List[int] = []
            for start in frontier:
                valid_cuts, items = _exchange_share_items(
                    graph, segments, (start, hi), max_cuts, table
                )
                gathered[start] = (valid_cuts, items)
                for cut in valid_cuts:
                    tail_start = cut + 1
                    if tail_start <= hi and tail_start not in seen:
                        seen.add(tail_start)
                        next_frontier.append(tail_start)
            frontier = next_frontier
            depth += 1
        # One sweep prices every (start, cut) pair the loop can visit.
        all_items = [item for _, items in gathered.values() for item in items]
        share_plans = data_shares_dp_batch(all_items, executors, quanta=quanta)
        self._priced: Dict[int, Tuple[List[int], List, List]] = {}
        offset = 0
        for start, (valid_cuts, items) in gathered.items():
            plans = share_plans[offset : offset + len(items)]
            offset += len(items)
            self._priced[start] = (valid_cuts, items, plans)
        self._decisions: Dict[int, Optional[ExchangeDecision]] = {}

    def decide(self, start: int) -> Optional[ExchangeDecision]:
        """The exchange decision for the remaining range ``[start..hi]``.

        Identical to ``explore_data_exchange(graph, segments, (start,
        hi), ...)``; selection runs lazily so only visited stage starts
        pay the (Python-level) cut scan.
        """
        if start in self._decisions:
            return self._decisions[start]
        priced = self._priced.get(start)
        if priced is None:
            raise KeyError(f"stage start {start} was not pre-priced")
        valid_cuts, items, plans = priced
        decision = _select_exchange_decision(
            self._graph,
            self._segments,
            (start, self._hi),
            self._executors,
            valid_cuts,
            items,
            plans,
            self._intra_latency_s,
            self._intra_bw_bytes_s,
            self._tail_seconds,
            self._min_sigma,
            self._table,
        )
        self._decisions[start] = decision
        return decision


@dataclass(frozen=True)
class ExchangeCost:
    """Per-layer halo exchange pricing (MoDNN full-depth semantics)."""

    per_tile_flops: Tuple[Dict[str, int], ...]
    exchange_bytes_per_boundary: int
    exchange_events_per_boundary: int

    def total_exchange_bytes(self, num_tiles: int) -> int:
        return self.exchange_bytes_per_boundary * max(num_tiles - 1, 0) * 2

    def total_exchange_events(self, num_tiles: int) -> int:
        return self.exchange_events_per_boundary * max(num_tiles - 1, 0) * 2


def exchange_costs(
    graph: DNNGraph,
    segments: Sequence[Segment],
    seg_range: Tuple[int, int],
    shares: Sequence[float],
) -> ExchangeCost:
    """Cost of full-depth row-band partitioning with per-layer exchange.

    Each tile computes exactly its share of every spatial layer (no
    recompute) but must receive ``(kernel-1)`` halo rows of each
    spatial layer's input from its neighbours -- one exchange event per
    such layer per boundary per direction.
    """
    lo, hi = seg_range
    prefix_lo, prefix_hi = spatial_prefix(graph, segments, seg_range)
    if prefix_hi < prefix_lo:
        raise PartitionError("range has no spatial prefix to exchange over")
    per_tile: List[Dict[str, int]] = []
    total = sum(shares)
    for share in shares:
        fraction = share / total
        tile_flops = {cls: 0 for cls in LAYER_CLASSES}
        for seg in segments[prefix_lo : prefix_hi + 1]:
            for cls, value in seg.flops_by_class.items():
                tile_flops[cls] += int(value * fraction)
        per_tile.append(tile_flops)
    halo_bytes = 0
    halo_events = 0
    for seg in segments[prefix_lo : prefix_hi + 1]:
        seg_bytes, seg_events = _segment_halo(graph, seg)
        halo_bytes += seg_bytes
        halo_events += seg_events
    return ExchangeCost(
        per_tile_flops=tuple(per_tile),
        exchange_bytes_per_boundary=halo_bytes,
        exchange_events_per_boundary=halo_events,
    )

"""Local DNN partitioner: HiDP's second tier.

Given the piece of the DNN a node received from the global tier (a
model block or a data tile band), the local partitioner consults the
local DSE to pick the partitioning mode across the node's processors
(paper Algorithm 1 lines 8-10):

- ``single``  -- whole piece on the best single processor,
- ``data``    -- spatial sub-bands across processors (Eq. 6 with psi),
- ``pipeline``-- block pipeline across processors (Eq. 5 with psi).

The decision minimises predicted completion time ``theta`` using the
same DP as the global tier, fed with the local computation-to-
communication vector ``psi{lambda, mu}`` instead of ``Psi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.dp import ExecutorModel, data_shares_dp, pipeline_cuts_dp, scale_flops
from repro.core.dse import StagedExchangeSearch, explore_data_exchange
from repro.fastpath import fastpath_enabled
from repro.core.plans import (
    LOCAL_DATA,
    LOCAL_PIPELINE,
    LOCAL_SINGLE,
    LOCAL_STAGED,
    LocalExec,
    UnitTask,
)
from repro.dnn.graph import DNNGraph, Segment
from repro.dnn.layers import LAYER_CLASSES
from repro.dnn.partition import (
    PartitionError,
    make_data_partition_from_shares,
    spatial_prefix,
)
from repro.dnn.segment_table import SegmentTable
from repro.platform.device import Device
from repro.platform.processor import Processor


@dataclass(frozen=True)
class LocalDecision:
    """The chosen local execution plus its predicted completion time."""

    execution: LocalExec
    predicted_s: float

    @property
    def mode(self) -> str:
        return self.execution.mode


def processor_executor_models(
    device: Device, processors: Optional[Sequence[Processor]] = None
) -> List[ExecutorModel]:
    """Local-tier executor models: one per processor, ``mu`` = memory fabric."""
    procs = list(processors) if processors is not None else list(device.processors)
    models = []
    for proc in procs:
        rates = {cls: proc.rate(cls) for cls in LAYER_CLASSES}
        models.append(
            ExecutorModel(
                ident=proc.name,
                rates=rates,
                comm_bytes_s=device.intra_bw_bytes_s,
                fixed_s=proc.setup_time_s + device.intra_latency_s,
                dispatch_s=proc.dispatch_time_s,
            )
        )
    return models


class LocalPartitioner:
    """Plans the execution of one workload piece on one device."""

    def __init__(
        self,
        device: Device,
        quanta: int = 10,
        enable_data: bool = True,
        enable_pipeline: bool = True,
        max_stages: int = 8,
        processors: Optional[Sequence[str]] = None,
    ):
        self.device = device
        self.quanta = quanta
        self.enable_data = enable_data
        self.enable_pipeline = enable_pipeline
        self.max_stages = max_stages
        if processors is None:
            self._procs: Tuple[Processor, ...] = device.processors
        else:
            self._procs = tuple(device.processor(name) for name in processors)
        self._models = processor_executor_models(device, self._procs)
        # Hoisted aggregates for the (hot) staged-search tail estimate.
        self._aggregate_rates = {
            cls: sum(proc.rate(cls) for proc in self._procs) for cls in LAYER_CLASSES
        }
        self._min_dispatch_s = min(proc.dispatch_time_s for proc in self._procs)

    # Candidate generators -------------------------------------------------

    def _single(
        self,
        flops_by_class: Mapping[str, int],
        num_ops: int,
        in_bytes: int,
        out_bytes: int,
        label: str,
    ) -> LocalDecision:
        best_proc, best_time = None, float("inf")
        for proc in self._procs:
            time = proc.task_seconds(flops_by_class, num_ops=num_ops)
            time += self.device.transfer_seconds(in_bytes)
            if time < best_time:
                best_time, best_proc = time, proc
        task = UnitTask(
            processor=best_proc.name,
            flops_by_class=dict(flops_by_class),
            input_bytes=in_bytes,
            output_bytes=out_bytes,
            label=label,
            num_ops=num_ops,
        )
        return LocalDecision(LocalExec(mode=LOCAL_SINGLE, tasks=(task,)), best_time)

    def _data(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        band: Optional[Tuple[int, int]],
        label: str,
        table: SegmentTable,
    ) -> Optional[LocalDecision]:
        if len(self._procs) < 2:
            return None
        if band is not None:
            return self._data_banded(graph, segments, seg_range, band, label, table)
        return self._staged(graph, segments, seg_range, label, table)

    def _staged(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        label: str,
        table: SegmentTable,
    ) -> Optional[LocalDecision]:
        """Chunk-wise data partitioning (the paper's Fig. 3 local split).

        The range is consumed front-to-back: each iteration searches a
        depth cut and share split for the remaining spatial prefix,
        emits one barrier stage of parallel tiles, and recurses on the
        remainder.  Tiles re-merge over shared memory at every stage
        boundary, so halo growth resets; the non-spatial tail becomes a
        final single-task stage on the best processor.

        On the DSE fast path the per-stage search is *batched*: every
        reachable stage start's candidate cuts are priced in one
        share-DP sweep up front (:class:`~repro.core.dse.
        StagedExchangeSearch`) instead of one sweep per stage.
        Decisions -- and therefore stages and predictions -- are
        byte-identical to the per-stage reference
        (``REPRO_DSE_FASTPATH=0``); the randomized equivalence tests in
        ``tests/core/test_staged_fastpath.py`` enforce this.
        """
        if fastpath_enabled():
            search = StagedExchangeSearch(
                graph,
                segments,
                seg_range,
                self._models,
                intra_latency_s=self.device.intra_latency_s,
                intra_bw_bytes_s=self.device.intra_bw_bytes_s,
                quanta=self.quanta,
                tail_seconds=lambda tail_range: self._parallel_tail_estimate(
                    table, tail_range
                ),
                min_sigma=2,
                table=table,
                max_stages=self.max_stages,
            )
            return self._staged_core(graph, segments, seg_range, label, table, search.decide)
        return self._staged_reference(graph, segments, seg_range, label, table)

    def _staged_reference(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        label: str,
        table: SegmentTable,
    ) -> Optional[LocalDecision]:
        """Per-stage search (the seed behaviour, kept as the executable
        spec): one :func:`explore_data_exchange` sweep per emitted
        stage."""

        def decide(current: int):
            return explore_data_exchange(
                graph,
                segments,
                (current, seg_range[1]),
                self._models,
                intra_latency_s=self.device.intra_latency_s,
                intra_bw_bytes_s=self.device.intra_bw_bytes_s,
                quanta=self.quanta,
                tail_seconds=lambda tail_range: self._parallel_tail_estimate(
                    table, tail_range
                ),
                min_sigma=2,
                table=table,
            )

        return self._staged_core(graph, segments, seg_range, label, table, decide)

    def _staged_core(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        label: str,
        table: SegmentTable,
        decide,
    ) -> Optional[LocalDecision]:
        """The staged consumption loop, parameterised by the per-stage
        decision source (batched or per-stage reference)."""
        lo, hi = seg_range
        stages: List[Tuple[UnitTask, ...]] = []
        predicted = 0.0
        current = lo
        while current <= hi and len(stages) < self.max_stages:
            decision = decide(current)
            if decision is None:
                break
            cut = decision.cut_segment
            chunk_ops = table.range_ops(current, cut)
            chunk_flops = table.range_flops(current, cut)
            chunk_in = segments[current].in_spec.size_bytes
            chunk_out = segments[cut].out_spec.size_bytes
            stage_tasks = []
            stage_makespan = 0.0
            for slot, ((proc_idx, share), tile_flops) in enumerate(
                zip(decision.active, decision.per_tile_flops)
            ):
                proc = self._procs[proc_idx]
                boundaries = (1 if slot > 0 else 0) + (
                    1 if slot < len(decision.active) - 1 else 0
                )
                in_bytes = int(share * chunk_in) + boundaries * decision.exchange_equiv_bytes
                out_bytes = int(share * chunk_out)
                stage_tasks.append(
                    UnitTask(
                        processor=proc.name,
                        flops_by_class=tile_flops,
                        input_bytes=in_bytes,
                        output_bytes=out_bytes,
                        label=f"{label}/s{len(stages)}t{slot}",
                        num_ops=chunk_ops,
                    )
                )
                finish = (
                    self.device.transfer_seconds(in_bytes)
                    + proc.task_seconds(tile_flops, num_ops=chunk_ops)
                    + self.device.transfer_seconds(out_bytes)
                )
                stage_makespan = max(stage_makespan, finish)
            single_chunk = self._fastest(chunk_flops, chunk_ops).task_seconds(
                chunk_flops, num_ops=chunk_ops
            )
            if stage_makespan >= 0.97 * single_chunk:
                # Parallelising this chunk pays too little to justify
                # the barrier and per-stage setup; stop splitting.
                break
            stages.append(tuple(stage_tasks))
            predicted += stage_makespan
            if decision.tail_range is None:
                current = hi + 1
            else:
                current = decision.tail_range[0]
        if not stages:
            return None
        if current <= hi:
            rem_flops = table.range_flops(current, hi)
            rem_ops = table.range_ops(current, hi)
            proc = self._fastest(rem_flops, rem_ops)
            task = UnitTask(
                processor=proc.name,
                flops_by_class=rem_flops,
                input_bytes=segments[current].in_spec.size_bytes,
                output_bytes=segments[hi].out_spec.size_bytes,
                label=f"{label}/rest",
                num_ops=rem_ops,
            )
            stages.append((task,))
            predicted += proc.task_seconds(rem_flops, num_ops=rem_ops)
        flattened = tuple(task for stage in stages for task in stage)
        return LocalDecision(
            LocalExec(mode=LOCAL_STAGED, tasks=flattened, stages=tuple(stages)),
            predicted,
        )

    def _parallel_tail_estimate(
        self, table: SegmentTable, tail_range: Tuple[int, int]
    ) -> float:
        """Optimistic tail price for the staged search: the remainder
        will itself be parallelised, so charge the aggregate rate."""
        tail_flops = table.range_flops(tail_range[0], tail_range[1])
        tail_ops = table.range_ops(tail_range[0], tail_range[1])
        aggregate = 0.0
        for cls, flops in tail_flops.items():
            if flops:
                aggregate += flops / self._aggregate_rates[cls]
        dispatch = tail_ops * self._min_dispatch_s
        return aggregate + dispatch

    def _data_banded(
        self,
        graph: DNNGraph,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        band: Tuple[int, int],
        label: str,
        table: SegmentTable,
    ) -> Optional[LocalDecision]:
        """Sub-split a received tile band across local processors.

        The depth cut is fixed by the global tier (the band refers to
        rows of the range's spatial-prefix output), so only the share
        split is searched here.
        """
        prefix_lo, prefix_hi = spatial_prefix(graph, segments, seg_range)
        if prefix_hi < prefix_lo:
            return None
        prefix_flops = table.range_flops(prefix_lo, prefix_hi)
        height = graph.spec(segments[prefix_hi].layer_names[-1]).height
        fraction = (band[1] - band[0]) / height
        band_flops = scale_flops(prefix_flops, fraction)
        prefix_ops = table.range_ops(prefix_lo, prefix_hi)
        entry_bytes = int(segments[prefix_lo].in_spec.size_bytes * fraction)
        plan = data_shares_dp(
            band_flops, entry_bytes, self._models, quanta=self.quanta, num_ops=prefix_ops
        )
        active = [(idx, share) for idx, share in enumerate(plan.shares) if share > 0]
        if len(active) < 2:
            return None
        try:
            partition = make_data_partition_from_shares(
                graph,
                [share for _, share in active],
                segments=segments,
                seg_range=seg_range,
                band=band,
            )
        except PartitionError:
            return None
        if partition.num_tiles != len(active):
            return None
        tasks = []
        worst = 0.0
        for (proc_idx, _), tile in zip(active, partition.tiles):
            proc = self._procs[proc_idx]
            tasks.append(
                UnitTask(
                    processor=proc.name,
                    flops_by_class=dict(tile.flops_by_class),
                    input_bytes=tile.input_bytes,
                    output_bytes=tile.output_bytes,
                    label=f"{label}/tile{tile.index}",
                    num_ops=prefix_ops,
                )
            )
            finish = (
                self.device.transfer_seconds(tile.input_bytes)
                + proc.task_seconds(tile.flops_by_class, num_ops=prefix_ops)
                + self.device.transfer_seconds(tile.output_bytes)
            )
            worst = max(worst, finish)
        return LocalDecision(LocalExec(mode=LOCAL_DATA, tasks=tuple(tasks)), worst)

    def _pipeline(
        self,
        segments: Sequence[Segment],
        seg_range: Tuple[int, int],
        label: str,
        table: SegmentTable,
    ) -> Optional[LocalDecision]:
        lo, hi = seg_range
        if len(self._procs) < 2 or hi - lo < 1:
            return None
        # Memoised slice: a stable tuple identity lets the coarsening
        # memo in pipeline_cuts_dp hit across repeated plans.
        segs = table.chain_slice(lo, hi)
        plan = pipeline_cuts_dp(segs, self._models, source_executor=0)
        if plan.num_blocks < 2:
            return None
        tasks = []
        for seg_lo, seg_hi, executor_idx in plan.blocks:
            tasks.append(
                UnitTask(
                    processor=self._procs[executor_idx].name,
                    flops_by_class=table.range_flops(seg_lo, seg_hi),
                    input_bytes=segments[seg_lo].in_spec.size_bytes,
                    output_bytes=segments[seg_hi].out_spec.size_bytes,
                    label=f"{label}/stage{len(tasks)}",
                    num_ops=table.range_ops(seg_lo, seg_hi),
                )
            )
        return LocalDecision(
            LocalExec(mode=LOCAL_PIPELINE, tasks=tuple(tasks)), plan.latency_s
        )

    def _fastest(self, flops_by_class: Mapping[str, int], num_ops: int = 0) -> Processor:
        return min(
            self._procs, key=lambda proc: proc.task_seconds(flops_by_class, num_ops=num_ops)
        )

    # Public API ------------------------------------------------------------

    def plan_piece(
        self,
        graph: DNNGraph,
        seg_range: Tuple[int, int],
        band: Optional[Tuple[int, int]] = None,
        segments: Optional[Sequence[Segment]] = None,
        label: str = "",
        table: Optional[SegmentTable] = None,
    ) -> LocalDecision:
        """Pick the best local mode for a segment range (optionally a band).

        ``theta = min(theta_omega, theta_sigma)`` -- Algorithm 1 line 10.

        ``table`` supplies O(1) range costs over the segment chain;
        when omitted it is taken from the graph (full chain) or built
        from ``segments``.
        """
        if table is not None:
            segs = table.segments
        elif segments is not None:
            segs = segments
            table = SegmentTable(segs)
        else:
            table = graph.segment_table()
            segs = table.segments
        lo, hi = seg_range
        flops = table.range_flops(lo, hi)
        num_ops = table.range_ops(lo, hi)
        in_bytes = segs[lo].in_spec.size_bytes
        out_bytes = segs[hi].out_spec.size_bytes
        if band is not None:
            prefix_lo, prefix_hi = spatial_prefix(graph, segs, seg_range)
            height = graph.spec(segs[prefix_hi].layer_names[-1]).height
            fraction = (band[1] - band[0]) / height
            flops = scale_flops(flops, fraction)
            in_bytes = int(in_bytes * fraction)
            out_bytes = int(out_bytes * fraction)
        candidates = [self._single(flops, num_ops, in_bytes, out_bytes, label)]
        if self.enable_data:
            data_candidate = self._data(graph, segs, seg_range, band, label, table)
            if data_candidate is not None:
                candidates.append(data_candidate)
        if self.enable_pipeline and band is None:
            pipe_candidate = self._pipeline(segs, seg_range, label, table)
            if pipe_candidate is not None:
                candidates.append(pipe_candidate)
        return min(candidates, key=lambda decision: decision.predicted_s)

"""Framework facade: submit requests, run the simulation, collect metrics.

This is the reproduction of the paper's middleware (Fig. 3): the
application module hands requests to the run-time scheduler, which
plans (strategy), distributes (communication module) and executes
(processor stations), then merges and reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.executor import PlanExecutor
from repro.core.hidp import HiDPStrategy
from repro.core.strategy import Strategy
from repro.dnn.models import build_model
from repro.metrics.energy import cluster_energy_j
from repro.metrics.results import InferenceResult, RunResult
from repro.platform.cluster import Cluster, build_cluster
from repro.sim.runtime import SimRuntime
from repro.workloads.requests import InferenceRequest


class DistributedInferenceFramework:
    """Runs a request stream under one strategy on one cluster."""

    def __init__(self, cluster: Optional[Cluster] = None, strategy: Optional[Strategy] = None):
        self.cluster = cluster if cluster is not None else build_cluster()
        self.strategy = strategy if strategy is not None else HiDPStrategy()

    def run(
        self,
        requests: Sequence[InferenceRequest],
        gflops_bin_s: float = 0.25,
    ) -> RunResult:
        """Simulate the full request stream; returns aggregated metrics."""
        if not requests:
            raise ValueError("no requests to run")
        runtime = SimRuntime(self.cluster)
        executor = PlanExecutor(runtime)
        results: List[InferenceResult] = []

        def handle(request: InferenceRequest):
            if request.arrival_s > 0:
                yield runtime.env.timeout(request.arrival_s)
            graph = build_model(request.model)
            plan = self.strategy.plan(graph, self.cluster, load=runtime.load_snapshot())
            result = yield from executor.execute(request, plan)
            results.append(result)

        for request in requests:
            runtime.env.process(handle(request))
        runtime.env.run()

        if len(results) != len(requests):
            raise RuntimeError(
                f"{len(requests) - len(results)} requests never completed (deadlock?)"
            )
        makespan = max(result.completed_s for result in results)
        energy_by_device = cluster_energy_j(self.cluster, runtime.busy, (0.0, makespan))
        return RunResult(
            strategy=self.strategy.name,
            results=sorted(results, key=lambda r: r.request_id),
            makespan_s=makespan,
            energy_j=sum(energy_by_device.values()),
            energy_by_device=energy_by_device,
            gflops_series=runtime.flops_log.gflops_series(gflops_bin_s, makespan),
            network_bytes=runtime.transfer_log.total_bytes,
            total_flops=runtime.flops_log.total_flops,
            busy=runtime.busy,
        )


class HiDPFramework(DistributedInferenceFramework):
    """Convenience facade pre-wired with the HiDP strategy."""

    def __init__(self, cluster: Optional[Cluster] = None, **strategy_kwargs):
        super().__init__(cluster=cluster, strategy=HiDPStrategy(**strategy_kwargs))

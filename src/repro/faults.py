"""Seeded fault injection and the serving recovery contract.

Every figure up to fig10 runs on a static, healthy cluster.  This
module is the hostile-conditions tier (ROADMAP item 4): a
deterministic, seeded perturbation process drives timed cluster events
through the simulation, and the serving stack recovers from them.

Event model
-----------

:class:`PerturbationProcess` expands a seed into a fixed, sorted list
of :class:`FaultEvent` before the simulation starts -- the fault
timeline is a pure function of ``(seed, parameters, cluster)``, never
of simulation state, so runs replay byte-identically and a failure
reproduces from its seed.  Three independent exponential-clock streams
are drawn from one ``random.Random(seed)``:

- **Device churn** (``churn_rate`` outages/s): an available,
  unprotected device leaves (:meth:`Cluster.set_available`) and rejoins
  after an exponential outage (``mean_outage_s``).  A device already
  down is never drawn again until it rejoins.
- **Link degradation** (``link_rate`` episodes/s): the shared wireless
  medium slows by ``link_factor`` (bandwidth divided, latency
  multiplied) for an exponential episode, stacking multiplicatively
  with concurrent episodes, then restores exactly.
- **DVFS throttling** (``dvfs_rate`` episodes/s): one device's
  processors scale every task duration by ``dvfs_factor`` (thermal /
  frequency capping through :class:`~repro.platform.power.DVFSThrottle`)
  for an exponential episode.
- **Correlated (spatial) outages** (``correlated_rate`` episodes/s):
  the named ``correlated_group`` of devices fails *atomically* -- every
  unprotected, currently-up member leaves at the same instant and
  rejoins together after one shared exponential outage
  (``mean_correlated_outage_s``).  Models rack/power-domain failures:
  independent churn rarely takes down co-located boards at once, but a
  shared PSU does.  The group stream is drawn *after* the three legacy
  streams, so adding it never perturbs their timelines for a given
  seed.

A process with all rates zero produces *no events*, and arming it
is a no-op: every schedule stays byte-identical to a fault-free run
(the degenerate pin in ``tests/integration/test_hatch_matrix.py``).

Recovery contract
-----------------

Who detects, who retries, who sheds:

- The **executor** detects.  :class:`~repro.core.executor.PlanExecutor`
  gates each plan segment on device availability and raises
  :class:`DeviceLostError` (a structured failed-segment event: device,
  segment, sim time) the moment a plan touches a lost device.  Work
  already running finishes and is charged (partial work is real work);
  every resource hold is released on the way out, so no busy interval
  is orphaned and no grant leaks.
- The **scheduler** retries.  ``OnlineScheduler`` / ``ShardedScheduler``
  catch the failure, charge an exponential backoff
  (:meth:`RetryPolicy.backoff_s`) as queue delay, and re-admit the
  request through the normal dispatcher path, where planning against
  the current :meth:`~repro.platform.cluster.Cluster.availability_signature`
  (the plan-cache key) yields a plan that avoids the lost device.
- The **policy** sheds.  Past ``max_retries``, or past the
  ``pressure_threshold`` with ``degradation="shed"``, the request is
  counted shed instead of re-admitted (exactly-once: a request
  completes once *or* is shed, never both).  ``degradation="downgrade"``
  re-admits over-pressure retries at a worse priority instead of
  dropping them.

:class:`FaultTrace` accounts for all of it at both trace levels:
exact failure/retry/shed/downgrade counters always, streaming
time-to-recovery and retries-per-request percentiles always, per-event
failed-segment records only at ``trace_level="full"`` (the aggregate
level raises :class:`~repro.sim.trace.TraceLevelError` on per-entry
views, consistent with the other recorders).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.serving import StreamingStats
from repro.platform.power import BatteryModel
from repro.sim.trace import TRACE_FULL, TraceLevelError, check_trace_level

#: Fault-event kinds.
DEVICE_LEAVE = "device_leave"
DEVICE_JOIN = "device_join"
LINK_DEGRADE = "link_degrade"
LINK_RESTORE = "link_restore"
DVFS_THROTTLE = "dvfs_throttle"
DVFS_RESTORE = "dvfs_restore"
BATTERY_DRAIN = "battery_drain"
FAULT_KINDS = (
    DEVICE_LEAVE,
    DEVICE_JOIN,
    LINK_DEGRADE,
    LINK_RESTORE,
    DVFS_THROTTLE,
    DVFS_RESTORE,
    BATTERY_DRAIN,
)

#: Target name of cluster-wide link events (there is one shared medium).
LINK_TARGET = "wlan"

#: Graceful-degradation modes of :class:`RetryPolicy`.
DEGRADE_NONE = "none"
DEGRADE_SHED = "shed"
DEGRADE_DOWNGRADE = "downgrade"
DEGRADATIONS = (DEGRADE_NONE, DEGRADE_SHED, DEGRADE_DOWNGRADE)


class DeviceLostError(RuntimeError):
    """A plan touched a device that left the cluster mid-execution.

    The executor's structured failed-segment event: ``device`` is the
    lost node, ``segment`` names the FSM segment that tripped the gate
    (``dispatch``, ``probe``, ``explore``, ``offload``, ``stage``,
    ``tile``, ``execute``, ``result``, ``merge``), ``time_s`` the
    simulated detection time.
    """

    def __init__(self, device: str, segment: str, time_s: float):
        super().__init__(
            f"device {device!r} lost during {segment!r} at t={time_s:.6f}s"
        )
        self.device = device
        self.segment = segment
        self.time_s = time_s


@dataclass(frozen=True)
class FaultEvent:
    """One timed perturbation.  ``factor`` is the slowdown multiplier
    of link/DVFS events (restore events carry the factor they undo)."""

    time_s: float
    kind: str
    target: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"negative event time: {self}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class PerturbationProcess:
    """A seeded generator of fault timelines (see the module docstring).

    ``horizon_s`` bounds where *new* episodes start; the paired
    join/restore events may land past it, so every outage ends and the
    cluster finishes the run whole.  ``protected`` devices are never
    taken down (schedulers add their leader devices: a dispatcher
    cannot replan from a dead brain).
    """

    seed: int = 0
    horizon_s: float = 60.0
    churn_rate: float = 0.0
    mean_outage_s: float = 1.0
    link_rate: float = 0.0
    link_factor: float = 4.0
    mean_link_s: float = 1.0
    dvfs_rate: float = 0.0
    dvfs_factor: float = 2.0
    mean_dvfs_s: float = 1.0
    protected: Tuple[str, ...] = ()
    correlated_rate: float = 0.0
    correlated_group: Tuple[str, ...] = ()
    mean_correlated_outage_s: float = 1.0
    #: Finite energy budgets per device, as ``(name, BatteryModel)``
    #: pairs (a tuple keeps the dataclass hashable/frozen).  Unlike the
    #: pre-expanded event streams above, battery drain depends on
    #: *simulation state* (actual busy time under the actual DVFS
    #: factor), so :class:`FaultInjector` samples it every
    #: ``battery_sample_s`` over ``[0, horizon_s]`` instead of expanding
    #: it up front.  An empty tuple adds zero processes and zero events:
    #: schedules stay byte-identical.
    batteries: Tuple[Tuple[str, BatteryModel], ...] = ()
    battery_sample_s: float = 0.25

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon_s}")
        for name in ("churn_rate", "link_rate", "dvfs_rate", "correlated_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}: {getattr(self, name)}")
        for name in ("mean_outage_s", "mean_link_s", "mean_dvfs_s", "mean_correlated_outage_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.link_factor < 1.0 or self.dvfs_factor < 1.0:
            raise ValueError("slowdown factors must be >= 1")
        if self.correlated_rate > 0 and not self.correlated_group:
            raise ValueError("correlated_rate needs a non-empty correlated_group")
        if self.battery_sample_s <= 0:
            raise ValueError(
                f"battery_sample_s must be positive, got {self.battery_sample_s}"
            )
        seen = set()
        for name, model in self.batteries:
            if not isinstance(model, BatteryModel):
                raise ValueError(f"battery entry for {name!r} is not a BatteryModel")
            if name in seen:
                raise ValueError(f"duplicate battery entry for device {name!r}")
            seen.add(name)

    def battery_map(self, protected: Sequence[str] = ()) -> Dict[str, BatteryModel]:
        """The configured batteries minus shielded devices, in config order."""
        shielded = set(self.protected) | set(protected)
        return {
            name: model for name, model in self.batteries if name not in shielded
        }

    def events(self, cluster, protected: Sequence[str] = ()) -> List[FaultEvent]:
        """Expand the seed into the sorted fault timeline for ``cluster``."""
        shielded = set(self.protected) | set(protected)
        rng = random.Random(self.seed)
        out: List[FaultEvent] = []
        names = [device.name for device in cluster.devices]
        candidates = [name for name in names if name not in shielded]
        if self.churn_rate > 0 and candidates:
            down_until = {name: 0.0 for name in candidates}
            t = 0.0
            while True:
                t += rng.expovariate(self.churn_rate)
                if t >= self.horizon_s:
                    break
                up = [name for name in candidates if down_until[name] <= t]
                if not up:
                    continue
                victim = up[rng.randrange(len(up))]
                outage = rng.expovariate(1.0 / self.mean_outage_s)
                out.append(FaultEvent(t, DEVICE_LEAVE, victim))
                out.append(FaultEvent(t + outage, DEVICE_JOIN, victim))
                down_until[victim] = t + outage
        if self.link_rate > 0:
            t = 0.0
            while True:
                t += rng.expovariate(self.link_rate)
                if t >= self.horizon_s:
                    break
                episode = rng.expovariate(1.0 / self.mean_link_s)
                out.append(FaultEvent(t, LINK_DEGRADE, LINK_TARGET, self.link_factor))
                out.append(
                    FaultEvent(t + episode, LINK_RESTORE, LINK_TARGET, self.link_factor)
                )
        if self.dvfs_rate > 0 and names:
            t = 0.0
            while True:
                t += rng.expovariate(self.dvfs_rate)
                if t >= self.horizon_s:
                    break
                target = names[rng.randrange(len(names))]
                episode = rng.expovariate(1.0 / self.mean_dvfs_s)
                out.append(FaultEvent(t, DVFS_THROTTLE, target, self.dvfs_factor))
                out.append(
                    FaultEvent(t + episode, DVFS_RESTORE, target, self.dvfs_factor)
                )
        # Correlated group outages: drawn strictly after the legacy
        # streams (and only when enabled), so enabling them never
        # perturbs an existing seed's churn/link/DVFS timelines.
        if self.correlated_rate > 0:
            unknown = [name for name in self.correlated_group if name not in names]
            if unknown:
                raise ValueError(
                    f"correlated_group names unknown devices {unknown}; "
                    f"cluster has {names}"
                )
            group = [name for name in self.correlated_group if name not in shielded]
            if group:
                group_down_until = 0.0
                t = 0.0
                while True:
                    t += rng.expovariate(self.correlated_rate)
                    if t >= self.horizon_s:
                        break
                    if t < group_down_until:
                        continue  # the group is still down: no re-fail
                    outage = rng.expovariate(1.0 / self.mean_correlated_outage_s)
                    for name in group:
                        out.append(FaultEvent(t, DEVICE_LEAVE, name))
                        out.append(FaultEvent(t + outage, DEVICE_JOIN, name))
                    group_down_until = t + outage
        out.sort(key=lambda event: event.time_s)  # stable: ties keep stream order
        return out


class FaultInjector:
    """Applies a fault timeline to a live :class:`~repro.sim.runtime.SimRuntime`.

    :meth:`arm` registers the injector on the runtime (``runtime.faults``)
    and spawns the driver process -- but only when the timeline is
    non-empty, so a zero-event process adds zero scheduled events and
    leaves every schedule byte-identical.  The executor consults
    :meth:`device_ok` at its segment gates.

    Battery drain (the one fault stream that cannot be pre-expanded,
    because drain follows *actual* busy time under the *actual* DVFS
    factor) is sampled instead: ``batteries`` maps device names to
    :class:`~repro.platform.power.BatteryModel`, and a monitor process
    wakes every ``battery_sample_s`` over ``[0, battery_horizon_s]``,
    integrates each device's completed busy seconds (the
    :class:`~repro.sim.trace.BusyRecorder` totals are exact at both
    trace levels; in-flight holds bill at their completion sample), and
    drains the charge.  A device crossing ``floor_j`` leaves through the
    same :meth:`Cluster.set_available` path as churn -- and never
    rejoins; a drained battery has nothing left to rejoin with.  The
    serving control plane may call :meth:`force_drain` ahead of the
    crossing to turn the surprise outage into a planned migration.
    """

    def __init__(
        self,
        runtime,
        cluster,
        events: Sequence[FaultEvent],
        batteries: Optional[Dict[str, BatteryModel]] = None,
        battery_sample_s: float = 0.25,
        battery_horizon_s: float = 60.0,
    ):
        self.runtime = runtime
        self.cluster = cluster
        self.events = tuple(events)
        self.applied = 0
        self.counts: Dict[str, int] = {}
        if battery_sample_s <= 0:
            raise ValueError(f"battery_sample_s must be positive, got {battery_sample_s}")
        if battery_horizon_s <= 0:
            raise ValueError(f"battery_horizon_s must be positive, got {battery_horizon_s}")
        self.batteries: Dict[str, BatteryModel] = dict(batteries or {})
        known = {device.name for device in cluster.devices}
        for name in self.batteries:
            if name not in known:
                raise ValueError(f"battery configured for unknown device {name!r}")
        self.battery_sample_s = battery_sample_s
        self.battery_horizon_s = battery_horizon_s
        #: Remaining charge per battery device (exact at both levels).
        self.battery_charge: Dict[str, float] = {
            name: model.capacity_j for name, model in self.batteries.items()
        }
        #: Drain rate (J/s) observed over the last sampling window --
        #: the controller's projection signal for planned drains.
        self.battery_rate: Dict[str, float] = {name: 0.0 for name in self.batteries}
        #: Raw completed-busy-seconds watermark per station key (drain
        #: bills each window's *delta* at the station's current factor).
        self._station_busy: Dict[str, float] = {}
        self._battery_down: Dict[str, bool] = {name: False for name in self.batteries}

    @property
    def armed(self) -> bool:
        return bool(self.events) or bool(self.batteries)

    def arm(self) -> None:
        if not self.armed:
            return
        self.runtime.faults = self
        if self.events:
            self.runtime.env.process(self._drive())
        if self.batteries:
            self.runtime.env.process(self._monitor_batteries())

    def device_ok(self, device_name: str) -> bool:
        return self.cluster.is_available(device_name)

    def _drive(self):
        env = self.runtime.env
        for event in self.events:
            if event.time_s > env.now:
                yield env.timeout(event.time_s - env.now)
            self._apply(event)

    def battery_level(self, device_name: str) -> float:
        """Remaining charge of ``device_name``'s battery, in joules."""
        return self.battery_charge[device_name]

    def battery_drained(self, device_name: str) -> bool:
        return self._battery_down.get(device_name, False)

    def force_drain(self, device_name: str) -> None:
        """Take a battery device down *now* (the controller's planned
        migration, ahead of the projected floor crossing)."""
        if device_name not in self.batteries:
            raise ValueError(f"no battery configured for device {device_name!r}")
        self._drain(device_name)

    def _drain(self, device_name: str) -> None:
        if self._battery_down[device_name]:
            return
        self._battery_down[device_name] = True
        self.cluster.set_available(device_name, False)
        self.applied += 1
        self.counts[BATTERY_DRAIN] = self.counts.get(BATTERY_DRAIN, 0) + 1

    def _monitor_batteries(self):
        env = self.runtime.env
        busy = self.runtime.busy
        last_t = env.now
        while env.now < self.battery_horizon_s:
            yield env.timeout(self.battery_sample_s)
            now = env.now
            window_s = now - last_t
            last_t = now
            for name, model in self.batteries.items():
                if self._battery_down[name]:
                    continue
                delta_busy = 0.0
                for station in self.runtime.stations_of(name):
                    total = busy.busy_seconds(station.key)
                    prev = self._station_busy.get(station.key, 0.0)
                    self._station_busy[station.key] = total
                    delta_busy += (total - prev) * station.throttle.factor
                drain = model.drain_j(window_s, delta_busy)
                self.battery_charge[name] -= drain
                self.battery_rate[name] = drain / window_s if window_s > 0 else 0.0
                if self.battery_charge[name] <= model.floor_j:
                    self._drain(name)
            if all(self._battery_down.values()):
                break

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == DEVICE_LEAVE:
            self.cluster.set_available(event.target, False)
        elif kind == DEVICE_JOIN:
            self.cluster.set_available(event.target, True)
        elif kind == LINK_DEGRADE:
            self.runtime.network.degrade(event.factor)
        elif kind == LINK_RESTORE:
            self.runtime.network.restore(event.factor)
        elif kind == DVFS_THROTTLE:
            for station in self.runtime.stations_of(event.target):
                station.throttle.apply(event.factor)
        elif kind == DVFS_RESTORE:
            for station in self.runtime.stations_of(event.target):
                station.throttle.restore(event.factor)
        self.applied += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1


@dataclass(frozen=True)
class RetryPolicy:
    """How a scheduler re-admits failed requests (see module docstring).

    ``backoff_s(attempt)`` is charged as queue delay before the
    ``attempt``-th re-admission (exponential: base * factor^(attempt-1)).
    Past ``max_retries`` failures the request is shed.  With a
    ``degradation`` mode set, a retry arriving while scheduler pressure
    (queued + waiting-for-slot requests) exceeds ``pressure_threshold``
    is shed outright (``"shed"``) or re-admitted ``downgrade_priority_by``
    priority levels worse (``"downgrade"``).

    **Jitter.**  A correlated-group outage fails its whole cohort at
    one instant; with deterministic backoff the cohort re-admits on the
    same tick and stampedes the survivors.  ``jitter > 0`` stretches
    each backoff by up to that fraction -- ``delay * (1 + jitter * u)``
    where ``u`` is a *seeded* uniform draw keyed on ``(jitter_seed,
    request_id, attempt)``, so the spread is a pure function of the
    policy and the request, replayed byte-identically across runs.  The
    default ``jitter=0.0`` skips the draw entirely and stays
    byte-identical to the legacy backoff.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    degradation: str = DEGRADE_NONE
    pressure_threshold: int = 8
    downgrade_priority_by: int = 2
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"negative max_retries: {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(f"negative backoff: {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.backoff_factor}")
        if self.degradation not in DEGRADATIONS:
            raise ValueError(
                f"unknown degradation {self.degradation!r}; known: {DEGRADATIONS}"
            )
        if self.pressure_threshold < 0:
            raise ValueError(f"negative pressure threshold: {self.pressure_threshold}")
        if self.downgrade_priority_by < 0:
            raise ValueError(f"negative downgrade: {self.downgrade_priority_by}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {self.jitter}")

    def backoff_s(self, attempt: int, request_id: int = 0) -> float:
        """Queue delay charged before re-admission number ``attempt`` (1-based).

        With ``jitter`` set, the delay is stretched by a deterministic
        per-``(request_id, attempt)`` factor in ``[1, 1 + jitter]`` --
        see the class docstring.  ``jitter=0`` returns the exact legacy
        exponential delay.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter <= 0:
            return delay
        # An integer mix keyed on (seed, request, attempt): pure int
        # arithmetic, so the draw replays across processes.
        key = (self.jitter_seed * 1_000_003 + request_id) * 1_000_003 + attempt
        u = random.Random(key).random()
        return delay * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class FailedSegment:
    """One structured failed-segment record (``trace_level="full"`` only)."""

    request_id: int
    device: str
    segment: str
    time_s: float
    attempt: int


class FaultTrace:
    """Failure/recovery accounting at both trace levels.

    Counters (``failures``/``retries``/``shed``/``downgraded``/
    ``recovered``) are exact at both levels.  Time-to-recovery and
    retries-per-completed-request stream through
    :class:`~repro.metrics.serving.StreamingStats` (O(1) memory, exact
    counts, P-square percentiles).  Per-event views --
    :attr:`failed_segments`, :attr:`recovery_times` -- materialise only
    at ``trace_level="full"`` and raise
    :class:`~repro.sim.trace.TraceLevelError` otherwise.
    """

    def __init__(self, level: str = TRACE_FULL):
        self.level = check_trace_level(level)
        self._full = level == TRACE_FULL
        self.failures = 0
        self.retries = 0
        self.shed = 0
        self.downgraded = 0
        self.recovered = 0
        self.recovery = StreamingStats()
        self.retries_per_recovery = StreamingStats()
        self._failed_segments: List[FailedSegment] = []
        self._recovery_times: List[Tuple[int, float]] = []
        self._retry_times: List[Tuple[int, float]] = []

    def record_failure(
        self, request_id: int, device: str, segment: str, time_s: float, attempt: int
    ) -> None:
        self.failures += 1
        if self._full:
            self._failed_segments.append(
                FailedSegment(request_id, device, segment, time_s, attempt)
            )

    def record_retry(self, request_id: int, readmit_s: Optional[float] = None) -> None:
        """Count a re-admission; ``readmit_s`` (the sim time the retry
        re-enters the queue, backoff included) is kept per-event at
        ``trace_level="full"`` -- the jitter regression pin reads it."""
        self.retries += 1
        if self._full and readmit_s is not None:
            self._retry_times.append((request_id, readmit_s))

    def record_shed(self, request_id: int) -> None:
        del request_id
        self.shed += 1

    def record_downgrade(self, request_id: int) -> None:
        del request_id
        self.downgraded += 1

    def record_recovery(self, request_id: int, recovery_s: float, attempts: int) -> None:
        """A previously failed request completed ``recovery_s`` after its
        first failure, on dispatch attempt ``attempts``."""
        self.recovered += 1
        self.recovery.add(recovery_s)
        self.retries_per_recovery.add(float(attempts - 1))
        if self._full:
            self._recovery_times.append((request_id, recovery_s))

    def _require_full(self, what: str) -> None:
        if not self._full:
            raise TraceLevelError(
                f"{what} requires trace_level={TRACE_FULL!r}; this trace keeps "
                "streaming aggregates only"
            )

    @property
    def failed_segments(self) -> Tuple[FailedSegment, ...]:
        self._require_full("per-event failed-segment records")
        return tuple(self._failed_segments)

    @property
    def recovery_times(self) -> Tuple[Tuple[int, float], ...]:
        self._require_full("per-request recovery times")
        return tuple(self._recovery_times)

    @property
    def retry_times(self) -> Tuple[Tuple[int, float], ...]:
        self._require_full("per-retry re-admission times")
        return tuple(self._retry_times)

    def recovery_percentiles(self) -> Dict[str, float]:
        """Streaming p50/p95/p99 time-to-recovery (both levels)."""
        return self.recovery.percentiles()

    @property
    def mean_recovery_s(self) -> float:
        return self.recovery.mean

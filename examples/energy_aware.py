#!/usr/bin/env python3
"""Energy-aware distributed inference (the paper's stated future work).

"We consider energy-efficient distributed inference for future work."
This library already implements it: the HiDP DSE can select candidates
by predicted latency, predicted energy, or the energy-delay product.

Run:  python examples/energy_aware.py
"""

from repro.core import DistributedInferenceFramework
from repro.core.hidp import HiDPStrategy, OBJECTIVES
from repro.metrics.report import render_table
from repro.platform import build_cluster
from repro.workloads import single_request


def main() -> None:
    cluster = build_cluster()
    rows = []
    for objective in OBJECTIVES:
        row = {"Objective": objective}
        for model in ("efficientnet_b0", "resnet152", "vgg19"):
            framework = DistributedInferenceFramework(
                cluster, HiDPStrategy(objective=objective)
            )
            run = framework.run(single_request(model))
            result = run.results[0]
            row[f"{model} [ms]"] = result.latency_s * 1000
            row[f"{model} [J]"] = run.energy_j
        rows.append(row)
    print(render_table(rows, title="HiDP under different DSE objectives",
                       float_format="{:.1f}"))
    print("\nOn this cluster the idle power floor dominates, so the "
          "minimum-latency plan is usually also the minimum-energy plan -- "
          "the same coupling the paper observes in Fig. 5. The objectives "
          "diverge when candidates trade device count against makespan.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating application scenario (Sec. III, Workloads):

"a person bearing different smart gadgets and wearables including a
smartwatch, smartphone, smart ring, and augmented reality gear ...
these devices have diverse DNN applications that perform cognitive
vision tasks of variable input sizes and data volume".

We model the gadget ensemble as a stream of mixed inference requests
(AR gear -> InceptionNetV3 scene understanding, smartphone ->
ResNet-152 photo analysis, smartwatch -> EfficientNet-B0 gesture
recognition) arriving at the leader node, and compare how each
distribution strategy serves the stream.

Run:  python examples/smart_wearables.py
"""

from repro.baselines import build_strategy
from repro.core import DistributedInferenceFramework
from repro.metrics.report import render_table
from repro.platform import build_cluster
from repro.workloads import repeating_stream

#: gadget -> (model, story)
GADGETS = {
    "smartwatch": ("efficientnet_b0", "gesture recognition"),
    "ar_gear": ("inception_v3", "scene understanding"),
    "smartphone": ("resnet152", "photo analysis"),
}


def main() -> None:
    cluster = build_cluster()
    models = [model for model, _ in GADGETS.values()]
    requests = repeating_stream(models, interval_s=0.3, duration_s=6.0)
    print(f"Scenario: {len(requests)} requests over 6 s from "
          f"{', '.join(GADGETS)} on {cluster.size} edge nodes\n")

    rows = []
    for strategy_name in ("hidp", "disnet", "omniboost", "modnn"):
        framework = DistributedInferenceFramework(cluster, build_strategy(strategy_name))
        run = framework.run(requests)
        row = {
            "Strategy": strategy_name,
            "mean latency [ms]": run.mean_latency_s * 1000,
            "p100 latency [ms]": run.max_latency_s * 1000,
            "all served by [s]": run.makespan_s,
            "energy/req [J]": run.energy_per_inference_j,
        }
        for gadget, (model, _) in GADGETS.items():
            row[f"{gadget} [ms]"] = run.latency_of(model) * 1000
        rows.append(row)

    print(render_table(rows, title="Wearable-ensemble serving comparison",
                       float_format="{:.0f}"))
    print("\nHiDP keeps every gadget's latency lowest because each node "
          "splits its share across all of its cores, freeing the cluster "
          "for the next arrival.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bring your own DNN: define a custom network, prove partitioned
inference is exact, then let HiDP distribute it.

Demonstrates the three layers of the library working together:

1. `repro.dnn.GraphBuilder` -- describe any sequential/branchy CNN.
2. `repro.dnn.numeric` -- run it numerically, full vs tile-partitioned,
   and verify bit-exact equality (the accuracy guarantee).
3. `repro.core.HiDPFramework` -- plan and simulate its distributed
   execution on the heterogeneous cluster.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro.core import HiDPFramework
from repro.dnn import (
    Add,
    Conv2D,
    Dense,
    GlobalAvgPool,
    GraphBuilder,
    Pool2D,
    Softmax,
    image,
    numeric,
)
from repro.dnn.models import _REGISTRY  # noqa: PLC2701 - example registers a model
from repro.platform import build_cluster
from repro.workloads import single_request


def build_traffic_net():
    """A custom traffic-sign network: stem, two residual blocks, head."""
    builder = GraphBuilder("traffic_net", image(64, 3))
    builder.add(Conv2D(name="stem", filters=16, kernel_size=3, strides=1, pad="same"))
    for block in range(2):
        entry = builder.last
        main = builder.add(
            Conv2D(name=f"res{block}_a", filters=16, kernel_size=3, pad="same"), after=entry
        )
        main = builder.add(
            Conv2D(name=f"res{block}_b", filters=16, kernel_size=3, pad="same",
                   activation="linear"),
            after=main,
        )
        builder.add(Add(name=f"res{block}_add"), after=(main, entry))
    builder.add(Pool2D(name="pool", pool_size=2, strides=2))
    builder.add(Conv2D(name="mix", filters=32, kernel_size=3, strides=2, pad="same"))
    builder.add(GlobalAvgPool(name="gap"))
    builder.add(Dense(name="fc", units=43, activation="linear"))  # GTSRB classes
    builder.add(Softmax(name="predictions"))
    return builder.build()


def main() -> None:
    graph = build_traffic_net()
    print(f"Custom model: {graph.name}, {graph.total_flops / 1e6:.1f} MFLOPs, "
          f"{graph.num_layers} layers\n")

    # 1) prove partitioned inference is exact
    x = numeric.random_input(graph, seed=0)
    params = numeric.init_params(graph, seed=1)
    full = numeric.run_graph(graph, x, params)
    for tiles in (2, 4):
        tiled = numeric.run_data_partitioned(graph, x, tiles, params)
        err = float(np.max(np.abs(full - tiled)))
        print(f"  {tiles}-tile partitioned inference: max |error| = {err:.2e}")
    print("  -> partitioning preserves the prediction exactly\n")

    # 2) register with the zoo so the framework can build it by name
    _REGISTRY[graph.name] = build_traffic_net

    # 3) distribute it
    cluster = build_cluster()
    framework = HiDPFramework(cluster)
    run = framework.run(single_request(graph.name))
    result = run.results[0]
    print(f"HiDP served {graph.name} in {result.latency_s * 1000:.1f} ms "
          f"({result.plan_mode} mode on {', '.join(result.devices)})")


if __name__ == "__main__":
    main()

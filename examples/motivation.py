#!/usr/bin/env python3
"""The paper's motivational experiment (Fig. 1) on a single Jetson TX2.

Shows why distributed-inference strategies that run the default
TensorFlow configuration locally (P1: everything on the GPU) leave
large latency gains on the table, and how the optimal partitioning
configuration differs per DNN model.

Run:  python examples/motivation.py
"""

from repro.experiments.fig1_motivation import (
    best_config,
    normalised_fig1,
    report_fig1,
    run_fig1,
)


def main() -> None:
    latencies = run_fig1()
    print(report_fig1(latencies))
    print()
    norm = normalised_fig1(latencies)
    best = best_config(latencies)
    for model, config in best.items():
        saving = 100 * (1 - norm[model][config])
        print(f"{model:18s}: best at {config} "
              f"({saving:.0f}% below the default TF configuration)")
    print("\nTakeaway: the optimal (partitions, CPU/GPU split) differs per "
          "model -- a fixed global policy cannot capture it, which is the "
          "gap HiDP's local tier closes.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cluster scaling and failure injection (the Fig. 8 story, extended).

Sweeps the cluster from 2 to 5 nodes under the concurrent four-model
workload, then knocks out the strongest worker (Jetson Orin NX) at full
cluster size to show HiDP re-planning around the failure.

Run:  python examples/cluster_scaling.py
"""

from repro.baselines import build_strategy
from repro.core import DistributedInferenceFramework, HiDPFramework
from repro.metrics.report import render_table
from repro.platform import build_cluster
from repro.workloads import progressive_workload, single_request


def scaling_sweep() -> None:
    cluster = build_cluster()
    rows = []
    for size in (2, 3, 4, 5):
        sub = cluster.subcluster(size)
        row = {"Nodes": size, "Members": ", ".join(d.name for d in sub.devices)}
        for name in ("hidp", "disnet", "modnn"):
            framework = DistributedInferenceFramework(sub, build_strategy(name))
            run = framework.run(progressive_workload())
            row[f"{name} [ms]"] = run.mean_latency_s * 1000
        rows.append(row)
    print(render_table(rows, title="Mean latency vs cluster size (4 concurrent DNNs)",
                       float_format="{:.0f}"))


def failure_injection() -> None:
    cluster = build_cluster()
    framework = HiDPFramework(cluster)

    healthy = framework.run(single_request("resnet152")).results[0]
    print(f"\nHealthy cluster : ResNet-152 in {healthy.latency_s * 1000:.0f} ms "
          f"on {', '.join(healthy.devices)}")

    cluster.set_available("jetson_orin_nx", False)
    degraded = framework.run(single_request("resnet152")).results[0]
    print(f"Orin NX offline : ResNet-152 in {degraded.latency_s * 1000:.0f} ms "
          f"on {', '.join(degraded.devices)}")

    cluster.set_available("jetson_orin_nx", True)
    recovered = framework.run(single_request("resnet152")).results[0]
    print(f"Orin NX back    : ResNet-152 in {recovered.latency_s * 1000:.0f} ms "
          f"on {', '.join(recovered.devices)}")


def main() -> None:
    scaling_sweep()
    failure_injection()


if __name__ == "__main__":
    main()

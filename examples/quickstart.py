#!/usr/bin/env python3
"""Quickstart: one distributed inference with HiDP.

Builds the paper's five-board edge cluster (Table II), submits a single
ResNet-152 inference request to the leader (Jetson TX2), and prints the
hierarchical partitioning decision and the simulated outcome.

Run:  python examples/quickstart.py
"""

from repro.core import HiDPFramework
from repro.dnn.models import build_model
from repro.platform import build_cluster
from repro.workloads import single_request


def main() -> None:
    cluster = build_cluster()
    print(f"Cluster: {', '.join(d.name for d in cluster.devices)}")
    print(f"Leader:  {cluster.leader.name}\n")

    framework = HiDPFramework(cluster)
    model = "resnet152"
    graph = build_model(model)
    print(f"Model:   {model} ({graph.total_flops / 1e9:.1f} GFLOPs, "
          f"{graph.num_layers} layers, {len(graph.segments())} segments)\n")

    # Inspect the plan the DSE produces before running it.
    plan = framework.strategy.plan(graph, cluster)
    print(f"Global decision: {plan.mode} partitioning "
          f"(explored: {', '.join(plan.notes['explored'])})")
    for assignment in plan.assignments:
        local = assignment.local
        procs = ", ".join(dict.fromkeys(local.processors))
        print(f"  {assignment.device:>18s} -> local {local.mode:8s} on [{procs}]"
              f"  (send {assignment.send_bytes / 1e3:.0f} KB, "
              f"return {assignment.return_bytes / 1e3:.0f} KB)")
    print(f"Predicted latency: {plan.predicted_latency_s * 1000:.0f} ms\n")

    # Execute in the discrete-event simulator.
    run = framework.run(single_request(model))
    result = run.results[0]
    print(f"Measured latency:  {result.latency_s * 1000:.0f} ms")
    print(f"Cluster energy:    {run.energy_j:.2f} J over {run.makespan_s * 1000:.0f} ms")
    print(f"Network traffic:   {run.network_bytes / 1e6:.2f} MB")
    print(f"Devices used:      {', '.join(result.devices)}")


if __name__ == "__main__":
    main()

"""Bench: regenerate Fig. 6 (GFLOPs/s under the progressive workload)."""

from repro.experiments.fig6_performance import report_fig6, run_fig6


def test_bench_fig6(benchmark):
    results = benchmark(run_fig6)
    makespans = {name: result.makespan_s for name, result in results.items()}
    means = {name: result.mean_gflops for name, result in results.items()}
    assert makespans["hidp"] == min(makespans.values())
    assert makespans["hidp"] < 5.0  # paper: all four DNNs inside 5 s
    assert means["hidp"] == max(means.values())
    print()
    print(report_fig6(results))

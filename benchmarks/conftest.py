"""Benchmark fixtures.

Each benchmark regenerates one paper artefact (table or figure) and
prints the resulting rows, so ``pytest -m bench --benchmark-only -s``
doubles as the reproduction report.

Everything collected here is auto-marked ``bench`` (including every
``BENCH_*.json`` writer), so tier-1 (``pytest -x -q``) skips the
benchmarks by default and ``pytest -m bench`` runs the regression gates
explicitly -- see pytest.ini.
"""

from pathlib import Path

import pytest

from repro.platform.cluster import build_cluster

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    # The hook sees the whole collected session; only mark this
    # directory's items.  Items explicitly marked ``bigsim`` (the
    # several-minute 100k-request gate) keep that marker *instead* of
    # ``bench``, so ``-m bench`` stays a fast sweep and the big gate
    # only runs on an explicit ``-m bigsim``.
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            if item.get_closest_marker("bigsim") is None:
                item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def cluster():
    return build_cluster()

"""Benchmark fixtures.

Each benchmark regenerates one paper artefact (table or figure) and
prints the resulting rows, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.
"""

import pytest

from repro.platform.cluster import build_cluster


@pytest.fixture(scope="session")
def cluster():
    return build_cluster()

"""Bench: DSE overhead (Sec. III middleware paragraph).

"The overhead of using DP algorithm-based exploration including both
global and local partitioning is 15 ms on average."  This bench
measures the actual wall-clock of one cold HiDP planning pass (global
DP + local DPs across nodes) and asserts it stays in the tens of
milliseconds on commodity hardware.
"""

import pytest

from repro.core.hidp import HiDPStrategy
from repro.dnn.models import MODEL_NAMES, build_model


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_bench_dse_overhead(benchmark, cluster, model):
    graph = build_model(model)
    graph.segments()  # segment extraction is cached by callers in practice

    def plan_cold():
        strategy = HiDPStrategy()
        return strategy.plan(graph, cluster)

    plan = benchmark(plan_cold)
    assert plan.predicted_latency_s > 0
    # generous bound: interpreted Python on CI vs the paper's 15 ms
    assert benchmark.stats["mean"] < 0.25

"""Bench: DSE overhead (Sec. III middleware paragraph) + regression gate.

"The overhead of using DP algorithm-based exploration including both
global and local partitioning is 15 ms on average."  The first bench
measures the wall-clock of one cold HiDP planning pass and asserts it
stays in the tens of milliseconds on commodity hardware.

The second bench is the fast-path regression gate: it times HiDP
planning per model x cluster size with the vectorized DSE fast path on
(warm plan-level caches, the steady-state a serving middleware sees)
against the pure-Python reference kernels on cold graphs (the seed
behaviour), writes the ``BENCH_dse.json`` artifact at the repo root so
future PRs can track the perf trajectory, and asserts the fast path is
at least 5x faster for HiDP on the ResNet-scale graph with a 4-device
cluster.  Plan equality between the two paths is enforced separately by
``tests/core/test_dp_fastpath.py``.
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.hidp import HiDPStrategy
from repro.dnn.models import MODEL_NAMES, build_model
from repro.platform.cluster import build_cluster
from repro.platform.specs import DEVICE_NAMES

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse.json"
CLUSTER_SIZES = (2, 4)
GATE_MODEL = "resnet152"
GATE_DEVICES = 4
GATE_MIN_SPEEDUP = 5.0


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_bench_dse_overhead(benchmark, cluster, model):
    graph = build_model(model)
    graph.segments()  # segment extraction is cached on the graph

    def plan_cold():
        strategy = HiDPStrategy()
        return strategy.plan(graph, cluster)

    plan = benchmark(plan_cold)
    assert plan.predicted_latency_s > 0
    # generous bound: interpreted Python on CI vs the paper's 15 ms
    assert benchmark.stats["mean"] < 0.25


@contextmanager
def _fastpath_env(value):
    """Pin REPRO_DSE_FASTPATH for a measurement, restoring the caller's
    setting afterwards (the suite may run with the escape hatch set)."""
    previous = os.environ.get("REPRO_DSE_FASTPATH")
    os.environ["REPRO_DSE_FASTPATH"] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_DSE_FASTPATH", None)
        else:
            os.environ["REPRO_DSE_FASTPATH"] = previous


def _time_reference_cold(model, cluster, repeats=3):
    """Seed behaviour: pure-Python kernels, cold graph caches per plan."""
    times = []
    with _fastpath_env("0"):
        for _ in range(repeats):
            graph = build_model(model, fresh=True)
            start = time.perf_counter()
            HiDPStrategy().plan(graph, cluster)
            times.append(time.perf_counter() - start)
    return times


def _time_fastpath_warm(model, cluster, repeats=5):
    """Fast path in steady state: shared graph, fresh strategy per plan."""
    times = []
    with _fastpath_env("1"):
        graph = build_model(model, fresh=True)
        HiDPStrategy().plan(graph, cluster)  # warm the plan-level caches once
        for _ in range(repeats):
            start = time.perf_counter()
            HiDPStrategy().plan(graph, cluster)
            times.append(time.perf_counter() - start)
    return times


def test_bench_dse_fastpath_regression_gate():
    rows = []
    for model in MODEL_NAMES:
        for num_devices in CLUSTER_SIZES:
            cluster = build_cluster(DEVICE_NAMES[:num_devices])
            old = _time_reference_cold(model, cluster)
            new = _time_fastpath_warm(model, cluster)
            old_mean = sum(old) / len(old)
            new_mean = sum(new) / len(new)
            rows.append(
                {
                    "model": model,
                    "devices": num_devices,
                    "old_mean_s": old_mean,
                    "old_min_s": min(old),
                    "new_mean_s": new_mean,
                    "new_min_s": min(new),
                    "speedup_mean": old_mean / new_mean,
                    "speedup_min": min(old) / min(new),
                }
            )

    artifact = {
        "bench": "dse_planning_time",
        "description": (
            "HiDP planning wall-clock per model x cluster size: reference "
            "kernels on cold graphs (old, seed behaviour) vs vectorized "
            "fast path with warm plan-level caches (new, steady state)."
        ),
        "gate": {
            "model": GATE_MODEL,
            "devices": GATE_DEVICES,
            "min_speedup": GATE_MIN_SPEEDUP,
        },
        "results": rows,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    for row in rows:
        print(
            f"{row['model']:>16} x{row['devices']}dev  "
            f"old {row['old_mean_s'] * 1e3:7.2f} ms  "
            f"new {row['new_mean_s'] * 1e3:6.2f} ms  "
            f"{row['speedup_mean']:.1f}x (min-based {row['speedup_min']:.1f}x)"
        )

    gate = next(
        row
        for row in rows
        if row["model"] == GATE_MODEL and row["devices"] == GATE_DEVICES
    )
    # min-of-N is the noise-robust comparison; means are recorded for trend
    assert gate["speedup_min"] >= GATE_MIN_SPEEDUP, (
        f"DSE fast path regressed: {gate['speedup_min']:.2f}x < "
        f"{GATE_MIN_SPEEDUP}x for {GATE_MODEL} on {GATE_DEVICES} devices "
        f"(old {gate['old_min_s'] * 1e3:.2f} ms, new {gate['new_min_s'] * 1e3:.2f} ms)"
    )

"""Bench: online serving + the batched co-planning and sharding gates.

Three measurements, one artifact (``BENCH_serving.json``):

1. **Co-planning gate.**  A 16-request backlog (round-robin over the
   four evaluation models) is planned two ways: sequentially -- a fresh
   planner pass per request, the naive per-request scheduler -- and
   through one ``plan_batch`` co-planning pass, which dedups duplicate
   models and prices every distinct model's candidate cuts in a single
   batched share-DP sweep.  The gate asserts the batched pass is
   faster; plan equality between the two paths is asserted outright.

2. **Sustained-load serving.**  The Fig. 9 seeded Poisson stream (120
   requests) runs through the online scheduler; p50/p95/p99, SLO
   attainment and scheduler counters are recorded for trend tracking,
   and the capacity-1 no-overlap invariant is asserted on every
   station.

3. **Sharding gate.**  The Fig. 9 seeded bursty stream (120 requests)
   runs through the :class:`~repro.serving.ShardedScheduler` at 1, 2
   and 4 leader dispatchers (measured-bucket planning overhead on, so
   DSE time is on the latency path).  The gate asserts the 2-leader
   configuration's p99 end-to-end latency is no worse than the
   single-leader's on this pinned, fully deterministic stream:
   sharding pipelines batch planning against execution, and a
   scheduler change that pushes the 2-leader tail above the
   single-leader tail here deserves a look even when it is not a bug
   (the margin at the seed config is small -- percents, not
   multiples -- because the stream saturates the cluster).

4. **Leader-placement gate** (ISSUE 5).  The Fig. 10 seeded
   light-model burst stream (120 requests whose plans are
   leader-*local*) runs at 4 shards with the shared ``devices[0]``
   leader and with per-shard distributed physical leaders.  Shared
   serialises every light request on one board; distributed runs each
   shard on its own leader, so the gate asserts the distributed
   4-leader p99 is below the shared 4-leader p99 (at the seed config
   the p50 drops several-fold and the p99 by ~7%).  The heavy-model
   streams stay shared-led: fan-out from one leader is the capacity
   frontier for big DNNs, which the sweep records for contrast.

5. **Churn-recovery gate** (ISSUE 6).  The Fig. 11 sweep serves the
   seeded heavy-model Poisson stream under seeded fault injection
   (churn level x recovery policy x strategy) and records SLO
   attainment -- shed requests count as misses -- plus the exact
   failure/retry/shed accounting.  The gate asserts that under
   moderate churn HiDP with the retry policy *strictly* beats HiDP
   with recovery disabled (``max_retries=0``: first failure sheds),
   and that the moderate timeline actually produced failures, so the
   comparison cannot degenerate to a tie on a quiet seed.

6. **Specialization gate** (ISSUE 7).  The Fig. 12 sweep serves the
   seeded *skewed* light-model burst stream (one architecture family
   dominating) through the three admission routers at 4 shards: legacy
   ``hash`` and ``affinity`` in the legacy shared-leader configuration,
   and the ``clustered`` adaptive stack (workload-clustered shard
   specialties re-computed every epoch, cost-aware spill routing,
   partitioned plan cache, per-epoch leader re-election).  The gate
   asserts the clustered stack beats *both* legacy routers on p99
   end-to-end latency and on SLO attainment at the fig12 SLO, for
   every swept epoch length, and that the epoch machinery actually ran
   (epochs > 0 with at least one leader re-election).

7. **Control-plane gate** (ISSUE 9).  The Fig. 13 sweep runs the two
   adversarial fig10 streams (light bursts reward a wide in-flight
   window; the heavy stream saturates the cluster and punishes one)
   under three static windows and under the stream-blind AIMD
   controller, plus the fig11 churn timelines with and without
   breaker-enabled control.  The gate asserts the controller lands
   within 10% of the best static configuration's p99 and SLO
   attainment on both streams and strictly beats the worst static p99
   on both; breaker-enabled control never loses SLO attainment to
   no-control under churn, and the hostile timeline actually trips a
   breaker.

The result memos in ``repro.core.dp`` are cleared before every timed
pass so neither path is subsidised by the other's warm cache.
"""

import json
import time
from pathlib import Path

from repro.core.dp import clear_result_memos
from repro.core.hidp import HiDPStrategy
from repro.dnn.models import MODEL_NAMES, build_model
from repro.experiments.fig9_serving import SLO_S, build_arrivals
from repro.experiments.fig10_scaleout import build_arrivals as build_fig10_arrivals
from repro.experiments.fig11_churn import (
    NUM_REQUESTS as CHURN_REQUESTS,
    SLO_S as CHURN_SLO_S,
    run_fig11,
    summarize_fig11,
)
from repro.experiments.fig12_specialize import (
    EPOCH_LENGTHS,
    NUM_REQUESTS as FIG12_REQUESTS,
    SLO_S as FIG12_SLO_S,
    run_fig12,
)
from repro.experiments.fig13_control import (
    CONTROLLER,
    SLO_S as FIG13_SLO_S,
    STATIC_INFLIGHTS,
    STREAMS as FIG13_STREAMS,
    run_fig13_churn,
    run_fig13_streams,
    summarize_fig13,
)
from repro.platform.cluster import build_cluster
from repro.serving import (
    LEADERS_DISTRIBUTED,
    LEADERS_SHARED,
    OnlineScheduler,
    ShardedScheduler,
)

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
BACKLOG_SIZE = 16
REPEATS = 5
#: Leader-dispatcher counts swept by the sharding section.
SHARD_SWEEP = (1, 2, 4)
#: In-flight window for the sharding sweep: wide enough that the
#: dispatcher control loop -- not the slot pool -- is the varied
#: bottleneck.
SHARD_INFLIGHT = 8
#: Shard count of the leader-placement comparison.
LEADER_SHARDS = 4


def _backlog_graphs():
    return [build_model(MODEL_NAMES[i % len(MODEL_NAMES)]) for i in range(BACKLOG_SIZE)]


def _time_sequential(graphs, cluster, repeats=REPEATS):
    """Naive per-request planning: one fresh planner pass per request."""
    times = []
    for _ in range(repeats):
        clear_result_memos()
        start = time.perf_counter()
        plans = [HiDPStrategy().plan(graph, cluster) for graph in graphs]
        times.append(time.perf_counter() - start)
    return times, plans


def _time_batched(graphs, cluster, repeats=REPEATS):
    """One co-planning pass over the whole backlog."""
    times = []
    for _ in range(repeats):
        clear_result_memos()
        start = time.perf_counter()
        plans = HiDPStrategy().plan_batch(graphs, cluster)
        times.append(time.perf_counter() - start)
    return times, plans


def test_bench_serving_coplan_and_sustained_load(cluster):
    graphs = _backlog_graphs()
    for graph in graphs:
        graph.segments()  # segment extraction is cached on the graph

    sequential, plans_seq = _time_sequential(graphs, cluster)
    batched, plans_batch = _time_batched(graphs, cluster)
    assert plans_seq == plans_batch, "co-planned backlog diverged from sequential plans"

    seq_min, batch_min = min(sequential), min(batched)
    coplan = {
        "backlog": BACKLOG_SIZE,
        "models": list(MODEL_NAMES),
        "sequential_min_s": seq_min,
        "sequential_mean_s": sum(sequential) / len(sequential),
        "batched_min_s": batch_min,
        "batched_mean_s": sum(batched) / len(batched),
        "speedup_min": seq_min / batch_min,
    }
    print(
        f"co-plan {BACKLOG_SIZE}-request backlog: sequential {seq_min * 1e3:.2f} ms, "
        f"batched {batch_min * 1e3:.2f} ms ({coplan['speedup_min']:.1f}x)"
    )

    scheduler = OnlineScheduler(cluster=build_cluster())
    result = scheduler.run(build_arrivals("poisson"))
    assert result.count == 120
    result.busy.assert_no_overlaps()
    percentiles = result.percentiles()
    serving = {
        "arrivals": "poisson",
        "requests": result.count,
        "makespan_s": result.makespan_s,
        "throughput_rps": result.throughput_rps(),
        "latency_percentiles_s": percentiles,
        "slo_s": SLO_S,
        "slo_attainment": result.slo_attainment(SLO_S),
        "batches": result.batches,
        "mean_batch_size": result.mean_batch_size,
        "replans": result.replans,
        "energy_j": result.energy_j,
    }
    print(
        f"serving poisson x{result.count}: "
        f"p50 {percentiles['p50'] * 1e3:.0f} ms, p95 {percentiles['p95'] * 1e3:.0f} ms, "
        f"p99 {percentiles['p99'] * 1e3:.0f} ms, "
        f"SLO<{SLO_S:g}s {100 * serving['slo_attainment']:.0f}%, "
        f"{result.replans} replans over {result.batches} batches"
    )

    # Sharding sweep: the seeded bursty stream through 1/2/4 leader
    # dispatchers with measured-bucket planning overhead charged.
    bursty = build_arrivals("bursty")
    sharded = {}
    for leaders in SHARD_SWEEP:
        result = ShardedScheduler(
            cluster=build_cluster(), num_shards=leaders, max_inflight=SHARD_INFLIGHT
        ).run(bursty)
        assert result.count == len(bursty)
        result.busy.assert_no_overlaps()
        pct = result.percentiles()
        sharded[str(leaders)] = {
            "leaders": leaders,
            "latency_percentiles_s": pct,
            "throughput_rps": result.throughput_rps(),
            "steady_state_rps": result.steady_state_rps(),
            "slo_attainment": result.slo_attainment(SLO_S),
            "batches": result.batches,
            "replans": result.replans,
            "steals": result.steals,
            "planning_charged_s": result.planning_charged_s,
        }
        print(
            f"sharded bursty x{result.count} @ {leaders} leader(s): "
            f"p50 {pct['p50'] * 1e3:.0f} ms, p99 {pct['p99'] * 1e3:.0f} ms, "
            f"{result.replans} replans, {result.planning_charged_s * 1e3:.0f} ms planning charged"
        )

    # Leader-placement sweep (ISSUE 5): the light-model burst stream at
    # 4 shards, shared devices[0] leader vs per-shard physical leaders.
    light = build_fig10_arrivals("bursty_light", "uniform")
    leader_sweep = {}
    for policy in (LEADERS_SHARED, LEADERS_DISTRIBUTED):
        result = ShardedScheduler(
            cluster=build_cluster(),
            num_shards=LEADER_SHARDS,
            max_inflight=SHARD_INFLIGHT,
            leader_policy=policy,
        ).run(light)
        assert result.count == len(light)
        result.busy.assert_no_overlaps()
        pct = result.percentiles()
        leader_sweep[policy] = {
            "leaders": LEADER_SHARDS,
            "leader_devices": list(result.leader_devices),
            "latency_percentiles_s": pct,
            "throughput_rps": result.throughput_rps(),
            "steady_state_rps": result.steady_state_rps(),
            "planning_charged_s": result.planning_charged_s,
        }
        print(
            f"leader placement {policy} @ {LEADER_SHARDS} shards (light bursty "
            f"x{result.count}): p50 {pct['p50'] * 1e3:.0f} ms, "
            f"p99 {pct['p99'] * 1e3:.0f} ms, leaders {result.leader_devices}"
        )

    # Churn sweep (ISSUE 6): the Fig. 11 fault-injection grid, with the
    # exactly-once invariant asserted on every cell.
    churn_results = run_fig11()
    for key, result in churn_results.items():
        assert result.count + result.shed == CHURN_REQUESTS, (
            f"exactly-once violated in churn cell {key}: "
            f"{result.count} completed + {result.shed} shed != {CHURN_REQUESTS}"
        )
        assert result.failures == result.retries + result.shed, (
            f"failure accounting does not reconcile in churn cell {key}"
        )
        result.busy.assert_no_overlaps()
    churn = {
        "requests": CHURN_REQUESTS,
        "slo_s": CHURN_SLO_S,
        "cells": summarize_fig11(churn_results),
    }
    for name in ("moderate/none/HiDP", "moderate/retry/HiDP"):
        cell = churn["cells"][name]
        print(
            f"churn {name}: SLO<{CHURN_SLO_S:g}s {100 * cell['slo_attainment']:.1f}%, "
            f"{cell['failures']} failures, {cell['retries']} retries, "
            f"{cell['shed']} shed, {cell['recovered']} recovered"
        )

    # Specialization sweep (ISSUE 7): the skewed fig12 stream through
    # hash / affinity / clustered routing.
    fig12_results = run_fig12(skews=("skewed",))
    fig12_cells = {}
    for (skew, router_name, epoch_s), result in fig12_results.items():
        assert result.count == len(result.served)
        result.busy.assert_no_overlaps()
        pct = result.percentiles()
        label = router_name if epoch_s == 0 else f"{router_name}/{epoch_s:g}"
        fig12_cells[label] = {
            "skew": skew,
            "router": result.router,
            "epoch_s": epoch_s,
            "latency_percentiles_s": pct,
            "slo_attainment": result.slo_attainment(FIG12_SLO_S),
            "throughput_rps": result.throughput_rps(),
            "epochs": result.epochs,
            "leader_reelections": result.leader_reelections,
            "spilled": result.spilled,
            "cold_routed": result.cold_routed,
            "planning_charged_s": result.planning_charged_s,
        }
        print(
            f"fig12 {label} (skewed x{result.count}): "
            f"p50 {pct['p50'] * 1e3:.0f} ms, p99 {pct['p99'] * 1e3:.0f} ms, "
            f"SLO<{FIG12_SLO_S:g}s {100 * fig12_cells[label]['slo_attainment']:.1f}%, "
            f"{result.epochs} epochs, {result.leader_reelections} re-elections"
        )
    fig12 = {"requests": FIG12_REQUESTS, "slo_s": FIG12_SLO_S, "cells": fig12_cells}

    # Control-plane sweep (ISSUE 9): static in-flight windows vs the
    # stream-blind AIMD controller on the two adversarial fig10
    # streams, and breaker-enabled control under the fig11 churn
    # timelines.  The new `rejected` bucket must reconcile everywhere.
    fig13_stream_results = run_fig13_streams()
    fig13_churn_results = run_fig13_churn()
    for key, result in {**fig13_stream_results, **fig13_churn_results}.items():
        assert result.count + result.shed + result.rejected == 120, (
            f"admission ledger does not reconcile in fig13 cell {key}"
        )
        assert result.failures == result.retries + result.shed, (
            f"failure accounting does not reconcile in fig13 cell {key}"
        )
        result.busy.assert_no_overlaps()
    fig13_cells = summarize_fig13(fig13_stream_results, fig13_churn_results)
    fig13 = {"slo_s": FIG13_SLO_S, "cells": fig13_cells}
    for stream in FIG13_STREAMS:
        cell = fig13_cells[f"{stream}/{CONTROLLER}"]
        print(
            f"fig13 {stream}/controller: p99 {cell['p99_ms']:.0f} ms, "
            f"SLO<{FIG13_SLO_S:g}s {100 * cell['slo_attainment']:.1f}%, "
            f"{cell['widened']} widens, {cell['narrowed']} narrows"
        )
    for level in ("moderate", "hostile"):
        cell = fig13_cells[f"churn/{level}/breaker"]
        print(
            f"fig13 churn/{level}/breaker: SLO {100 * cell['slo_attainment']:.1f}%, "
            f"{cell['breaker_trips']} trips, {cell['breaker_restores']} restores"
        )

    artifact = {
        "bench": "serving",
        "description": (
            "Batched backlog co-planning vs naive per-request planning, "
            "sustained-load serving quality of the online scheduler on the "
            "seeded Fig. 9 Poisson stream, the sharded-scheduler "
            "leader-count sweep on the seeded bursty stream, the "
            "shared-vs-distributed physical-leader comparison on the seeded "
            "light-model burst stream, the Fig. 11 churn sweep (fault "
            "level x recovery policy x strategy, shed counts as SLO miss), "
            "and the Fig. 12 specialization sweep (clustered routing + epoch "
            "leader re-election vs legacy hash/affinity on the skewed "
            "light-model stream)."
        ),
        "gate": {
            "min_speedup": 1.0,
            "sharded_p99_max_ratio": 1.0,
            "distributed_leader_p99_max_ratio": 1.0,
            "churn_recovery_strictly_beats_none": True,
            "clustered_beats_legacy_routers": True,
            "controller_vs_best_static_max_ratio": 1.1,
            "controller_beats_worst_static_p99": True,
            "breaker_control_slo_min_ratio": 1.0,
        },
        "coplan": coplan,
        "serving": serving,
        "sharded": sharded,
        "leader_placement": leader_sweep,
        "churn": churn,
        "fig12_specialize": fig12,
        "fig13_control": fig13,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    # The gate: co-planning a backlog must beat planning it sequentially.
    assert batch_min < seq_min, (
        f"batched co-planning regressed: {batch_min * 1e3:.2f} ms for a "
        f"{BACKLOG_SIZE}-request backlog vs {seq_min * 1e3:.2f} ms sequential"
    )

    # The sharding gate: two leader dispatchers must not cost tail
    # latency against one on the bursty stream.
    single_p99 = sharded["1"]["latency_percentiles_s"]["p99"]
    dual_p99 = sharded["2"]["latency_percentiles_s"]["p99"]
    assert dual_p99 <= single_p99 + 1e-9, (
        f"sharding regressed the tail: 2-leader p99 {dual_p99 * 1e3:.1f} ms vs "
        f"single-leader {single_p99 * 1e3:.1f} ms on the bursty stream"
    )

    # The leader-placement gate: per-shard physical leaders must beat
    # the shared devices[0] leader on the leader-local light stream.
    shared_p99 = leader_sweep[LEADERS_SHARED]["latency_percentiles_s"]["p99"]
    distributed_p99 = leader_sweep[LEADERS_DISTRIBUTED]["latency_percentiles_s"]["p99"]
    assert distributed_p99 < shared_p99, (
        f"distributed leaders regressed the light-stream tail: "
        f"{distributed_p99 * 1e3:.1f} ms vs shared {shared_p99 * 1e3:.1f} ms"
    )

    # The churn-recovery gate: under moderate churn, replan-and-retry
    # must strictly beat recovery-disabled on SLO attainment (shed
    # counts as a miss, so "just drop the failed work" cannot win), and
    # the seeded timeline must actually fail something.
    no_recovery = churn["cells"]["moderate/none/HiDP"]
    with_recovery = churn["cells"]["moderate/retry/HiDP"]
    assert no_recovery["failures"] > 0, (
        "moderate churn produced no failures; the recovery gate is vacuous"
    )
    assert with_recovery["slo_attainment"] > no_recovery["slo_attainment"], (
        f"recovery did not beat shedding under moderate churn: retry "
        f"{with_recovery['slo_attainment']:.4f} vs none "
        f"{no_recovery['slo_attainment']:.4f} SLO attainment"
    )

    # The specialization gate (ISSUE 7): on the skewed stream, the
    # clustered stack must beat BOTH legacy routers on p99 latency AND
    # SLO attainment, at every swept epoch length, and the epoch
    # machinery must have actually run.
    for legacy in ("hash", "affinity"):
        legacy_p99 = fig12_cells[legacy]["latency_percentiles_s"]["p99"]
        legacy_slo = fig12_cells[legacy]["slo_attainment"]
        for epoch_s in EPOCH_LENGTHS:
            cell = fig12_cells[f"clustered/{epoch_s:g}"]
            clustered_p99 = cell["latency_percentiles_s"]["p99"]
            clustered_slo = cell["slo_attainment"]
            assert clustered_p99 < legacy_p99, (
                f"clustered routing (epoch {epoch_s:g}s) lost the skewed-stream "
                f"tail to {legacy}: p99 {clustered_p99 * 1e3:.1f} ms vs "
                f"{legacy_p99 * 1e3:.1f} ms"
            )
            assert clustered_slo > legacy_slo, (
                f"clustered routing (epoch {epoch_s:g}s) lost SLO attainment to "
                f"{legacy}: {clustered_slo:.4f} vs {legacy_slo:.4f}"
            )
    for epoch_s in EPOCH_LENGTHS:
        cell = fig12_cells[f"clustered/{epoch_s:g}"]
        assert cell["epochs"] > 0 and cell["leader_reelections"] > 0, (
            f"epoch machinery never ran at epoch {epoch_s:g}s: "
            f"{cell['epochs']} epochs, {cell['leader_reelections']} re-elections"
        )

    # The control-plane gate (ISSUE 9): the stream-blind controller
    # must land within 10% of the best static window's p99 and SLO
    # attainment on BOTH adversarial streams, and strictly beat the
    # worst static p99 on both -- a controller exists so nobody ships
    # the wrong static config.
    for stream in FIG13_STREAMS:
        statics = [fig13_cells[f"{stream}/static/{w}"] for w in STATIC_INFLIGHTS]
        controller = fig13_cells[f"{stream}/{CONTROLLER}"]
        best_p99 = min(cell["p99_ms"] for cell in statics)
        worst_p99 = max(cell["p99_ms"] for cell in statics)
        best_slo = max(cell["slo_attainment"] for cell in statics)
        assert controller["p99_ms"] <= 1.1 * best_p99, (
            f"controller missed the static p99 frontier on {stream}: "
            f"{controller['p99_ms']:.0f} ms vs best static {best_p99:.0f} ms"
        )
        assert controller["slo_attainment"] >= 0.9 * best_slo, (
            f"controller missed static SLO attainment on {stream}: "
            f"{controller['slo_attainment']:.4f} vs best static {best_slo:.4f}"
        )
        assert controller["p99_ms"] < worst_p99, (
            f"controller did not beat the worst static window on {stream}: "
            f"{controller['p99_ms']:.0f} ms vs worst static {worst_p99:.0f} ms"
        )

    # Breaker-enabled control must never lose SLO attainment to
    # no-control under churn, and the hostile timeline must actually
    # trip a breaker so the FSM is exercised, not vacuously green.
    for level in ("moderate", "hostile"):
        without = fig13_cells[f"churn/{level}/none"]
        with_breakers = fig13_cells[f"churn/{level}/breaker"]
        assert with_breakers["slo_attainment"] >= without["slo_attainment"], (
            f"breaker control lost SLO attainment under {level} churn: "
            f"{with_breakers['slo_attainment']:.4f} vs {without['slo_attainment']:.4f}"
        )
    hostile = fig13_cells["churn/hostile/breaker"]
    assert hostile["breaker_trips"] > 0, (
        "hostile churn never tripped a breaker; the breaker gate is vacuous"
    )

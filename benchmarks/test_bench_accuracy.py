"""Bench: the accuracy paragraph of Sec. IV-B -- numeric equivalence of
partitioned inference (what keeps Top-1/Top-5 identical)."""

from repro.experiments.tables import report_accuracy
from repro.metrics.accuracy import verify_partition_equivalence


def test_bench_accuracy(benchmark):
    results = benchmark(verify_partition_equivalence)
    assert results
    for check in results:
        assert check.equivalent, f"{check.model} x{check.num_tiles}"
    print()
    print(report_accuracy())

"""Bench: serving-scale hot path (ISSUE 4) + the events/sec gate.

One artifact (``BENCH_engine.json``), one seeded workload: a 5000-request
Poisson stream (4 rps, round-robin over the four evaluation models)
through the sharded scheduler at 4 leader dispatchers.  Planning-overhead
charging is off for this stream so the event schedule is independent of
plan-cache state -- which makes warm (steady-state) timing runs
schedule-identical to cold ones, pinned below via ``sim_events``.

Two sections, same old-vs-new methodology as ``BENCH_dse.json``:

1. **Pinned-schedule equivalence.**  The stream runs once per
   configuration -- reference paths (``REPRO_SIM_FASTPATH=0`` +
   ``REPRO_DSE_FASTPATH=0``, the seed engine and pure-Python DSE with
   full traces) and fast paths (optimized engine + batched staged
   search), plus a fast run with ``trace_level="aggregate"``.  All
   three must produce byte-identical schedules: same per-request
   dispatch/completion times, same scheduled-event count, same busy
   intervals (full-trace runs compared interval by interval), same
   energy/FLOPs/byte totals.  Identical timelines under identical
   workloads means identical *plans* too -- a diverging staged search
   or DP kernel would shift every downstream timestamp.

2. **Events/sec gate.**  Old: the reference configuration, cold caches
   (seed behaviour, like the BENCH_dse "old" side).  New: all fast
   paths with warm plan-level caches (the steady state a serving
   middleware sees, like the BENCH_dse "new" side) and aggregate
   traces.  The gate asserts the fast path sustains at least
   ``GATE_MIN_SPEEDUP``x the reference events/sec on the same stream.

The result memos in ``repro.core.dp`` (and the partition memos behind
them) are cleared before every cold measurement so no configuration is
subsidised by another's warm cache.
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.dp import clear_result_memos
from repro.core.hidp import HiDPStrategy
from repro.dnn.models import MODEL_NAMES
from repro.platform.cluster import build_cluster
from repro.serving import ShardedScheduler
from repro.sim.trace import TRACE_AGGREGATE, TRACE_FULL
from repro.workloads.arrivals import poisson_stream

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The seeded serving stream: 5000 requests at 4 rps.
NUM_REQUESTS = 5000
RATE_RPS = 4.0
STREAM_SEED = 7
#: Scheduler configuration (charging off: see module docstring).
NUM_SHARDS = 4
MAX_INFLIGHT = 8
#: Timing repeats (min-of-N is the noise-robust comparison).
OLD_REPEATS = 2
NEW_REPEATS = 3
GATE_MIN_SPEEDUP = 3.0


@contextmanager
def _hatches(sim: str, dse: str):
    """Pin both fast-path hatches, restoring the caller's settings."""
    previous = {
        name: os.environ.get(name)
        for name in ("REPRO_SIM_FASTPATH", "REPRO_DSE_FASTPATH")
    }
    os.environ["REPRO_SIM_FASTPATH"] = sim
    os.environ["REPRO_DSE_FASTPATH"] = dse
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _stream():
    return poisson_stream(
        MODEL_NAMES, rate_rps=RATE_RPS, num_requests=NUM_REQUESTS, seed=STREAM_SEED
    )


def _run(requests, strategy=None, trace_level=TRACE_FULL):
    scheduler = ShardedScheduler(
        cluster=build_cluster(),
        strategy=strategy if strategy is not None else HiDPStrategy(),
        num_shards=NUM_SHARDS,
        max_inflight=MAX_INFLIGHT,
        planning_overhead="off",
        trace_level=trace_level,
    )
    start = time.perf_counter()
    result = scheduler.run(requests)
    return time.perf_counter() - start, result


def _timeline(result):
    return [
        (
            record.request.request_id,
            record.arrival_s,
            record.dispatched_s,
            record.completed_s,
            record.replanned,
        )
        for record in result.served
    ]


def _assert_schedule_identical(reference, candidate, label):
    assert _timeline(reference) == _timeline(candidate), f"{label}: timelines diverge"
    assert reference.sim_events == candidate.sim_events, f"{label}: event counts diverge"
    assert reference.makespan_s == candidate.makespan_s, f"{label}: makespan diverges"
    assert reference.total_flops == candidate.total_flops
    assert reference.network_bytes == candidate.network_bytes
    assert reference.batches == candidate.batches
    assert reference.replans == candidate.replans
    assert reference.steals == candidate.steals


def test_bench_engine_events_per_second_gate():
    requests = _stream()

    # -- Section 1: pinned-schedule equivalence -------------------------
    with _hatches(sim="0", dse="0"):
        clear_result_memos()
        old_times = []
        old_result = None
        for _ in range(OLD_REPEATS):
            clear_result_memos()
            elapsed, old_result = _run(requests)  # fresh strategy: cold
            old_times.append(elapsed)

    with _hatches(sim="1", dse="1"):
        clear_result_memos()
        _, fast_full = _run(requests, trace_level=TRACE_FULL)

        _assert_schedule_identical(old_result, fast_full, "fast-vs-reference")
        # Full traces on both sides: compare busy intervals exactly.
        assert sorted(old_result.busy.keys()) == sorted(fast_full.busy.keys())
        for key in old_result.busy.keys():
            assert old_result.busy.intervals(key) == fast_full.busy.intervals(key), (
                f"busy intervals diverge on {key}"
            )

        # -- Section 2: events/sec, old-vs-new --------------------------
        strategy = HiDPStrategy()
        _run(requests, strategy=strategy, trace_level=TRACE_AGGREGATE)  # warm
        new_times = []
        new_result = None
        for _ in range(NEW_REPEATS):
            elapsed, new_result = _run(
                requests, strategy=strategy, trace_level=TRACE_AGGREGATE
            )
            new_times.append(elapsed)

        _assert_schedule_identical(old_result, new_result, "aggregate-vs-reference")
        # Aggregate totals must match the full-trace run exactly.
        for key in fast_full.busy.keys():
            assert new_result.busy.busy_seconds(key) == fast_full.busy.busy_seconds(key)
        assert new_result.energy_j == fast_full.energy_j == old_result.energy_j

    events = old_result.sim_events
    old_best, new_best = min(old_times), min(new_times)
    old_eps, new_eps = events / old_best, events / new_best
    speedup = new_eps / old_eps

    artifact = {
        "bench": "engine_serving_hot_path",
        "description": (
            "5000-request seeded Poisson stream (4 rps, four models) through "
            "the 4-shard scheduler: reference paths cold (REPRO_SIM_FASTPATH=0 "
            "+ REPRO_DSE_FASTPATH=0, full traces -- the pre-overhaul engine "
            "and DSE, seed behaviour) vs the optimized engine + batched "
            "staged search with warm plan-level caches and aggregate traces "
            "(steady state).  Schedules are asserted byte-identical across "
            "all configurations before timing."
        ),
        "gate": {"min_speedup": GATE_MIN_SPEEDUP},
        "stream": {
            "requests": NUM_REQUESTS,
            "rate_rps": RATE_RPS,
            "seed": STREAM_SEED,
            "models": list(MODEL_NAMES),
            "num_shards": NUM_SHARDS,
            "max_inflight": MAX_INFLIGHT,
            "planning_overhead": "off",
        },
        "sim_events": events,
        "makespan_s": old_result.makespan_s,
        "old": {
            "times_s": old_times,
            "best_s": old_best,
            "events_per_sec": old_eps,
        },
        "new": {
            "times_s": new_times,
            "best_s": new_best,
            "events_per_sec": new_eps,
        },
        "speedup": speedup,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"engine bench: {events} events, old {old_best:.2f}s "
        f"({old_eps / 1e3:.0f}k ev/s) -> new {new_best:.2f}s "
        f"({new_eps / 1e3:.0f}k ev/s), {speedup:.1f}x"
    )

    assert speedup >= GATE_MIN_SPEEDUP, (
        f"engine fast path regressed: {speedup:.2f}x < {GATE_MIN_SPEEDUP}x "
        f"(old {old_best:.2f}s, new {new_best:.2f}s for {events} events)"
    )

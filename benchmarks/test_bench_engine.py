"""Bench: serving-scale hot path (ISSUE 4) + the events/sec gate.

One artifact (``BENCH_engine.json``), one seeded workload: a 5000-request
Poisson stream (4 rps, round-robin over the four evaluation models)
through the sharded scheduler at 4 leader dispatchers.  Planning-overhead
charging is off for this stream so the event schedule is independent of
plan-cache state -- which makes warm (steady-state) timing runs
schedule-identical to cold ones, pinned below via ``sim_events``.

Two sections, same old-vs-new methodology as ``BENCH_dse.json``:

1. **Pinned-schedule equivalence.**  The stream runs once per
   configuration -- reference paths (``REPRO_SIM_FASTPATH=0`` +
   ``REPRO_DSE_FASTPATH=0``, the seed engine and pure-Python DSE with
   full traces) and fast paths (optimized engine + batched staged
   search), plus a fast run with ``trace_level="aggregate"``.  All
   three must produce byte-identical schedules: same per-request
   dispatch/completion times, same scheduled-event count, same busy
   intervals (full-trace runs compared interval by interval), same
   energy/FLOPs/byte totals.  Identical timelines under identical
   workloads means identical *plans* too -- a diverging staged search
   or DP kernel would shift every downstream timestamp.

2. **Events/sec gate.**  Old: the reference configuration, cold caches
   (seed behaviour, like the BENCH_dse "old" side).  New: all fast
   paths with warm plan-level caches (the steady state a serving
   middleware sees, like the BENCH_dse "new" side) and aggregate
   traces.  The gate asserts the fast path sustains at least
   ``GATE_MIN_SPEEDUP``x the reference events/sec on the same stream.

The result memos in ``repro.core.dp`` (and the partition memos behind
them) are cleared before every cold measurement so no configuration is
subsidised by another's warm cache.
"""

import json
import os
import resource
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.dp import clear_result_memos
from repro.core.hidp import HiDPStrategy
from repro.dnn.models import MODEL_NAMES
from repro.metrics.serving import result_fingerprint
from repro.platform.cluster import build_cluster
from repro.serving import ShardedScheduler
from repro.sim.engine import Environment
from repro.sim.trace import TRACE_AGGREGATE, TRACE_FULL
from repro.workloads.arrivals import poisson_stream

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The seeded serving stream: 5000 requests at 4 rps.
NUM_REQUESTS = 5000
RATE_RPS = 4.0
STREAM_SEED = 7
#: Scheduler configuration (charging off: see module docstring).
NUM_SHARDS = 4
MAX_INFLIGHT = 8
#: Timing repeats (min-of-N is the noise-robust comparison).
OLD_REPEATS = 2
NEW_REPEATS = 3
GATE_MIN_SPEEDUP = 3.0


@contextmanager
def _hatches(sim: str, dse: str):
    """Pin both fast-path hatches, restoring the caller's settings."""
    previous = {
        name: os.environ.get(name)
        for name in ("REPRO_SIM_FASTPATH", "REPRO_DSE_FASTPATH")
    }
    os.environ["REPRO_SIM_FASTPATH"] = sim
    os.environ["REPRO_DSE_FASTPATH"] = dse
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _stream():
    return poisson_stream(
        MODEL_NAMES, rate_rps=RATE_RPS, num_requests=NUM_REQUESTS, seed=STREAM_SEED
    )


def _run(requests, strategy=None, trace_level=TRACE_FULL):
    scheduler = ShardedScheduler(
        cluster=build_cluster(),
        strategy=strategy if strategy is not None else HiDPStrategy(),
        num_shards=NUM_SHARDS,
        max_inflight=MAX_INFLIGHT,
        planning_overhead="off",
        trace_level=trace_level,
    )
    start = time.perf_counter()
    result = scheduler.run(requests)
    return time.perf_counter() - start, result


def _timeline(result):
    return [
        (
            record.request.request_id,
            record.arrival_s,
            record.dispatched_s,
            record.completed_s,
            record.replanned,
        )
        for record in result.served
    ]


def _assert_schedule_identical(reference, candidate, label):
    assert _timeline(reference) == _timeline(candidate), f"{label}: timelines diverge"
    assert reference.sim_events == candidate.sim_events, f"{label}: event counts diverge"
    assert reference.makespan_s == candidate.makespan_s, f"{label}: makespan diverges"
    assert reference.total_flops == candidate.total_flops
    assert reference.network_bytes == candidate.network_bytes
    assert reference.batches == candidate.batches
    assert reference.replans == candidate.replans
    assert reference.steals == candidate.steals


def test_bench_engine_events_per_second_gate():
    requests = _stream()

    # -- Section 1: pinned-schedule equivalence -------------------------
    with _hatches(sim="0", dse="0"):
        clear_result_memos()
        old_times = []
        old_result = None
        for _ in range(OLD_REPEATS):
            clear_result_memos()
            elapsed, old_result = _run(requests)  # fresh strategy: cold
            old_times.append(elapsed)

    with _hatches(sim="1", dse="1"):
        clear_result_memos()
        _, fast_full = _run(requests, trace_level=TRACE_FULL)

        _assert_schedule_identical(old_result, fast_full, "fast-vs-reference")
        # Full traces on both sides: compare busy intervals exactly.
        assert sorted(old_result.busy.keys()) == sorted(fast_full.busy.keys())
        for key in old_result.busy.keys():
            assert old_result.busy.intervals(key) == fast_full.busy.intervals(key), (
                f"busy intervals diverge on {key}"
            )

        # -- Section 2: events/sec, old-vs-new --------------------------
        strategy = HiDPStrategy()
        _run(requests, strategy=strategy, trace_level=TRACE_AGGREGATE)  # warm
        new_times = []
        new_result = None
        for _ in range(NEW_REPEATS):
            elapsed, new_result = _run(
                requests, strategy=strategy, trace_level=TRACE_AGGREGATE
            )
            new_times.append(elapsed)

        _assert_schedule_identical(old_result, new_result, "aggregate-vs-reference")
        # Aggregate totals must match the full-trace run exactly.
        for key in fast_full.busy.keys():
            assert new_result.busy.busy_seconds(key) == fast_full.busy.busy_seconds(key)
        assert new_result.energy_j == fast_full.energy_j == old_result.energy_j

    events = old_result.sim_events
    old_best, new_best = min(old_times), min(new_times)
    old_eps, new_eps = events / old_best, events / new_best
    speedup = new_eps / old_eps

    # The several-minute 100k gate (below) writes its own section into
    # the same artifact; preserve it across re-runs of this bench.
    previous_bigsim = None
    if ARTIFACT_PATH.exists():
        previous_bigsim = json.loads(ARTIFACT_PATH.read_text()).get("bigsim")
    artifact = {
        "bench": "engine_serving_hot_path",
        "description": (
            "5000-request seeded Poisson stream (4 rps, four models) through "
            "the 4-shard scheduler: reference paths cold (REPRO_SIM_FASTPATH=0 "
            "+ REPRO_DSE_FASTPATH=0, full traces -- the pre-overhaul engine "
            "and DSE, seed behaviour) vs the optimized engine + batched "
            "staged search with warm plan-level caches and aggregate traces "
            "(steady state).  Schedules are asserted byte-identical across "
            "all configurations before timing."
        ),
        "gate": {"min_speedup": GATE_MIN_SPEEDUP},
        "stream": {
            "requests": NUM_REQUESTS,
            "rate_rps": RATE_RPS,
            "seed": STREAM_SEED,
            "models": list(MODEL_NAMES),
            "num_shards": NUM_SHARDS,
            "max_inflight": MAX_INFLIGHT,
            "planning_overhead": "off",
        },
        "sim_events": events,
        "makespan_s": old_result.makespan_s,
        "old": {
            "times_s": old_times,
            "best_s": old_best,
            "events_per_sec": old_eps,
        },
        "new": {
            "times_s": new_times,
            "best_s": new_best,
            "events_per_sec": new_eps,
        },
        "speedup": speedup,
    }
    if previous_bigsim is not None:
        artifact["bigsim"] = previous_bigsim
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"engine bench: {events} events, old {old_best:.2f}s "
        f"({old_eps / 1e3:.0f}k ev/s) -> new {new_best:.2f}s "
        f"({new_eps / 1e3:.0f}k ev/s), {speedup:.1f}x"
    )

    assert speedup >= GATE_MIN_SPEEDUP, (
        f"engine fast path regressed: {speedup:.2f}x < {GATE_MIN_SPEEDUP}x "
        f"(old {old_best:.2f}s, new {new_best:.2f}s for {events} events)"
    )


# -- The 100k-request gate (ISSUE 10) -----------------------------------------
#
# The million-request day-in-the-life stream, scaled to a gateable
# size: 100k requests at 80 rps through 4 shard dispatchers, charging
# off, aggregate traces.  Marked ``bigsim`` (several minutes of wall
# clock): excluded from tier-1, the quick pulse and the plain
# ``-m bench`` sweep; run explicitly with ``-m bigsim``.

#: The large stream.
BIG_NUM_REQUESTS = 100_000
BIG_RATE_RPS = 80.0
#: The PR 4 fast path on this stream (the pre-batch-drain engine with
#: the PR 4 executor/runtime, measured min-of-N on the reference
#: machine).  The ISSUE 10 gate: the batch-drain loop must sustain at
#: least ``BIG_GATE_MIN_SPEEDUP`` x this on the same stream.
PR4_FAST_EVENTS_PER_SEC = 342_651.9
BIG_GATE_MIN_SPEEDUP = 1.5
#: Flat-memory ceiling under ``trace_level="aggregate"``: the 100k run
#: books ~96 MB peak RSS (cluster model + plan caches + O(1) streaming
#: aggregates); a per-event or per-request leak of even 100 bytes would
#: add ~1.5 GB.  The ceiling leaves ~3x headroom for allocator and
#: platform variance without letting a real leak through.
BIG_MAX_RSS_KB = 300_000
BIG_REPEATS = 2


def _big_stream():
    return poisson_stream(
        MODEL_NAMES,
        rate_rps=BIG_RATE_RPS,
        num_requests=BIG_NUM_REQUESTS,
        seed=STREAM_SEED,
    )


def _big_run(requests, trace_level=TRACE_AGGREGATE, checkpoint_at_s=None):
    scheduler = ShardedScheduler(
        cluster=build_cluster(),
        num_shards=NUM_SHARDS,
        max_inflight=MAX_INFLIGHT,
        planning_overhead="off",
        trace_level=trace_level,
    )
    start = time.perf_counter()
    result = scheduler.run(requests, checkpoint_at_s=checkpoint_at_s)
    return time.perf_counter() - start, result


def _assert_counts_exact():
    """``scheduled_events``/``pending_events`` stay exact under
    batch-drain: the counters are recomputed from first principles
    (sequence counter, live heap) at every stage of a drained run."""
    for fast in (True, False):
        env = Environment(fast=fast)
        for index in range(64):
            env.timeout(0.25 * (index % 8))  # heavy same-time batching
        assert env.scheduled_events == 64
        assert env.pending_events == 64
        env.run(until=1.0)
        drained = sum(1 for t in (0.25 * (i % 8) for i in range(64)) if t <= 1.0)
        assert env.pending_events == 64 - drained
        assert env.pending_events == env.snapshot().pending
        assert env.scheduled_events == 64
        env.run()
        assert env.pending_events == 0
        assert env.scheduled_events == 64


@pytest.mark.bigsim
def test_bench_engine_bigsim_100k_gate():
    _assert_counts_exact()
    requests = _big_stream()

    # -- Fast path: timed repeats + flat-memory assertion ---------------
    with _hatches(sim="1", dse="1"):
        fast_times = []
        fast_result = None
        for _ in range(BIG_REPEATS):
            elapsed, fast_result = _big_run(requests)
            fast_times.append(elapsed)
        max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        fast_digest = result_fingerprint(fast_result)

        # -- Checkpoint/resume: pause at half-makespan, byte-identical --
        _, checkpoint = _big_run(
            requests, checkpoint_at_s=fast_result.makespan_s / 2
        )
        assert checkpoint.pending_events > 0
        resumed = checkpoint.resume()
        assert result_fingerprint(resumed) == fast_digest, (
            "checkpoint/resume forked the 100k schedule"
        )

    # -- Reference path: schedule identity (single run, untimed gate) ---
    with _hatches(sim="0", dse="1"):
        _, reference_result = _big_run(requests)
        assert result_fingerprint(reference_result) == fast_digest, (
            "batch-drain forked the 100k schedule from the seed engine"
        )

    events = fast_result.sim_events
    assert len(fast_result.served) == BIG_NUM_REQUESTS
    fast_best = min(fast_times)
    fast_eps = events / fast_best
    speedup = fast_eps / PR4_FAST_EVENTS_PER_SEC

    artifact = json.loads(ARTIFACT_PATH.read_text()) if ARTIFACT_PATH.exists() else {
        "bench": "engine_serving_hot_path"
    }
    artifact["bigsim"] = {
        "description": (
            "100k-request seeded Poisson stream (80 rps, four models) "
            "through the 4-shard scheduler with aggregate traces: the "
            "batch-drain engine vs the recorded PR 4 fast path, with "
            "fast/reference/checkpoint-resume schedules asserted "
            "byte-identical before timing."
        ),
        "gate": {
            "min_speedup_vs_pr4_fast": BIG_GATE_MIN_SPEEDUP,
            "pr4_fast_events_per_sec": PR4_FAST_EVENTS_PER_SEC,
            "max_rss_kb": BIG_MAX_RSS_KB,
        },
        "stream": {
            "requests": BIG_NUM_REQUESTS,
            "rate_rps": BIG_RATE_RPS,
            "seed": STREAM_SEED,
            "models": list(MODEL_NAMES),
            "num_shards": NUM_SHARDS,
            "max_inflight": MAX_INFLIGHT,
            "planning_overhead": "off",
            "trace_level": "aggregate",
        },
        "sim_events": events,
        "makespan_s": fast_result.makespan_s,
        "times_s": fast_times,
        "best_s": fast_best,
        "events_per_sec": fast_eps,
        "speedup_vs_pr4_fast": speedup,
        "max_rss_kb": max_rss_kb,
        "result_sha256": fast_digest,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"bigsim: {events} events in {fast_best:.2f}s "
        f"({fast_eps / 1e3:.0f}k ev/s), {speedup:.2f}x the PR 4 fast "
        f"path, peak RSS {max_rss_kb / 1024:.0f} MB"
    )

    assert speedup >= BIG_GATE_MIN_SPEEDUP, (
        f"batch-drain gate failed: {fast_eps:.0f} ev/s is only "
        f"{speedup:.2f}x the PR 4 fast path "
        f"({PR4_FAST_EVENTS_PER_SEC:.0f} ev/s); need {BIG_GATE_MIN_SPEEDUP}x"
    )
    assert max_rss_kb <= BIG_MAX_RSS_KB, (
        f"aggregate-trace memory is not flat: peak RSS {max_rss_kb} KB "
        f"exceeds the {BIG_MAX_RSS_KB} KB ceiling (leak on the 100k path?)"
    )

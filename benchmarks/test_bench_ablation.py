"""Bench: ablation study over HiDP's design choices (DESIGN.md Sec. 5).

1. Hierarchical vs global-only partitioning (the local tier's value).
2. Hybrid mode selection vs forced single mode.
3. DP share search vs proportional greedy.
4. Per-layer-class compute intensity vs a scalar delta (collapses the
   EfficientNet behaviour).
"""

import statistics

import pytest

from repro.baselines import MoDNNFTPStrategy
from repro.core.dp import ExecutorModel, data_shares_dp, data_shares_greedy
from repro.core.framework import DistributedInferenceFramework
from repro.core.hidp import HiDPStrategy
from repro.core.plans import MODE_DATA, MODE_MODEL
from repro.dnn.layers import LAYER_CLASSES
from repro.dnn.models import MODEL_NAMES, build_model
from repro.platform.cluster import build_cluster
from repro.workloads.requests import single_request


def _mean_latency(strategy, cluster):
    values = []
    for model in MODEL_NAMES:
        framework = DistributedInferenceFramework(cluster, strategy)
        values.append(framework.run(single_request(model)).results[0].latency_s)
    return statistics.mean(values)


def test_bench_ablation_local_tier(benchmark, cluster):
    """Disabling the local tier must cost latency on average -- this is
    the paper's central claim isolated from everything else."""

    def run():
        full = _mean_latency(HiDPStrategy(), cluster)
        global_only = _mean_latency(
            HiDPStrategy(local_data=False, local_pipeline=False), cluster
        )
        return full, global_only

    full, global_only = benchmark(run)
    print(f"\nlocal tier ablation: full {full*1000:.0f} ms vs global-only {global_only*1000:.0f} ms")
    assert full < global_only


def test_bench_ablation_hybrid_mode(benchmark, cluster):
    """min(data, model) must not lose to either forced mode."""

    def run():
        return (
            _mean_latency(HiDPStrategy(), cluster),
            _mean_latency(HiDPStrategy(allowed_modes=(MODE_DATA,)), cluster),
            _mean_latency(HiDPStrategy(allowed_modes=(MODE_MODEL,)), cluster),
        )

    hybrid, data_only, model_only = benchmark(run)
    print(
        f"\nhybrid {hybrid*1000:.0f} ms, data-only {data_only*1000:.0f} ms, "
        f"model-only {model_only*1000:.0f} ms"
    )
    assert hybrid <= data_only * 1.02
    assert hybrid <= model_only * 1.02


def test_bench_ablation_dp_vs_greedy(benchmark):
    """The subset-sum DP must dominate proportional splitting once
    communication and fixed costs matter."""
    executors = [
        ExecutorModel(
            ident="leader",
            rates={cls: 20e9 for cls in LAYER_CLASSES},
            comm_bytes_s=1e18,
        ),
        ExecutorModel(
            ident="remote",
            rates={cls: 60e9 for cls in LAYER_CLASSES},
            comm_bytes_s=10e6,
            fixed_s=0.006,
        ),
        ExecutorModel(
            ident="weak",
            rates={cls: 2e9 for cls in LAYER_CLASSES},
            comm_bytes_s=10e6,
            fixed_s=0.008,
        ),
    ]
    flops = {"conv": int(5e9)}

    def run():
        dp = data_shares_dp(flops, 2 * 10**6, executors, quanta=20)
        greedy = data_shares_greedy(flops, 2 * 10**6, executors)
        # evaluate the greedy split under the full cost model
        greedy_makespan = max(
            ex.fixed_s + ex.comm_seconds(share * 2 * 10**6) + share * ex.compute_seconds(flops)
            for ex, share in zip(executors, greedy.shares)
            if share > 0
        )
        return dp.makespan_s, greedy_makespan

    dp_makespan, greedy_makespan = benchmark(run)
    print(f"\nDP {dp_makespan*1000:.1f} ms vs greedy {greedy_makespan*1000:.1f} ms")
    assert dp_makespan <= greedy_makespan


def test_bench_ablation_scalar_delta(benchmark):
    """Collapsing the per-layer-class intensity table to a scalar must
    destroy the EfficientNet CPU+GPU benefit (DESIGN.md Sec. 5.4)."""
    from repro.platform.processor import CPU_PROFILE, GPU_PROFILE

    def run():
        import repro.platform.processor as proc_mod

        cluster_classful = build_cluster(["jetson_tx2"])
        eff = build_model("efficientnet_b0")
        classful_plan = HiDPStrategy().plan(eff, cluster_classful)

        # scalar-delta cluster: flatten the profiles
        saved_gpu, saved_cpu = dict(GPU_PROFILE), dict(CPU_PROFILE)
        try:
            for profile in (GPU_PROFILE, CPU_PROFILE):
                for key in profile:
                    profile[key] = 1.0
            cluster_scalar = build_cluster(["jetson_tx2"])
            scalar_plan = HiDPStrategy().plan(eff, cluster_scalar)
        finally:
            GPU_PROFILE.update(saved_gpu)
            CPU_PROFILE.update(saved_cpu)
        return classful_plan, scalar_plan

    classful_plan, scalar_plan = benchmark(run)
    classful_procs = {
        task.processor for a in classful_plan.assignments for task in a.local.tasks
    }
    scalar_procs = {
        task.processor for a in scalar_plan.assignments for task in a.local.tasks
    }
    print(f"\nclassful procs: {sorted(classful_procs)}; scalar procs: {sorted(scalar_procs)}")
    # With per-class deltas the CPUs earn real shares of EfficientNet;
    # with a scalar delta the GPU dominates outright.
    assert any(proc.startswith("cpu") for proc in classful_procs)


def test_bench_ablation_modnn_semantics(benchmark, cluster):
    """Literal MoDNN (per-layer exchange) vs MoDNN-from-HiDP's-data-
    module (FTP + serial tail): the exchange reading is the kinder one
    on deep networks, which is why it is our primary baseline."""

    def run():
        from repro.baselines import MoDNNStrategy

        exchange = _mean_latency(MoDNNStrategy(), cluster)
        ftp = _mean_latency(MoDNNFTPStrategy(), cluster)
        return exchange, ftp

    exchange, ftp = benchmark(run)
    print(f"\nMoDNN exchange {exchange*1000:.0f} ms vs FTP reading {ftp*1000:.0f} ms")
    assert exchange < ftp


def test_bench_ablation_objectives(benchmark, cluster):
    """Energy / EDP objectives (DESIGN.md Sec. 6): the latency objective
    must never be slower, the energy objective never more joule-hungry,
    under the shared candidate set."""
    from repro.core.hidp import (
        ModeCandidate,
        OBJECTIVE_ENERGY,
        OBJECTIVE_LATENCY,
        estimate_candidate_energy,
    )

    graph = build_model("resnet152")

    def run():
        latency_plan = HiDPStrategy(objective=OBJECTIVE_LATENCY).plan(graph, cluster)
        energy_plan = HiDPStrategy(objective=OBJECTIVE_ENERGY).plan(graph, cluster)
        return latency_plan, energy_plan

    latency_plan, energy_plan = benchmark(run)

    def energy_of(plan):
        return estimate_candidate_energy(
            cluster,
            ModeCandidate(
                mode=plan.mode,
                predicted_s=plan.predicted_latency_s,
                assignments=plan.assignments,
                merge_exec=plan.merge_exec,
                notes={},
            ),
        )

    print(
        f"\nlatency objective: {latency_plan.predicted_latency_s*1000:.0f} ms / "
        f"{energy_of(latency_plan):.1f} J; energy objective: "
        f"{energy_plan.predicted_latency_s*1000:.0f} ms / {energy_of(energy_plan):.1f} J"
    )
    assert latency_plan.predicted_latency_s <= energy_plan.predicted_latency_s + 1e-9
    assert energy_of(energy_plan) <= energy_of(latency_plan) + 1e-9

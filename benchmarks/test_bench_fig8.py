"""Bench: regenerate Fig. 8 (latency vs cluster size 2-5)."""

from repro.experiments.fig8_scaling import average_reduction, report_fig8, run_fig8


def test_bench_fig8(benchmark):
    table = benchmark(run_fig8)
    for size, per_strategy in table.items():
        hidp = per_strategy["hidp"]
        for strategy, value in per_strategy.items():
            assert hidp <= value, f"n={size}: {strategy} beat HiDP"
    # HiDP's local tier keeps it flat as the cluster shrinks
    assert table[2]["hidp"] <= 1.25 * table[5]["hidp"]
    avg = average_reduction(table)
    assert all(value > 0 for value in avg.values())
    print()
    print(report_fig8(table))

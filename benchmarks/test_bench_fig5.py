"""Bench: regenerate Fig. 5a (latency) and 5b (energy).

Paper expectations encoded as assertions: HiDP lowest latency and
energy for every workload; mean latency reduction ordering
DisNet < MoDNN (paper: 37% vs 56%).
"""

from repro.experiments.fig5_latency_energy import (
    average_reduction,
    report_fig5,
    run_fig5,
)


def test_bench_fig5(benchmark):
    table = benchmark(run_fig5)
    for model, per_strategy in table.items():
        hidp_latency = per_strategy["hidp"]["latency_s"]
        hidp_energy = per_strategy["hidp"]["energy_j"]
        for strategy, metrics in per_strategy.items():
            assert hidp_latency <= metrics["latency_s"]
            assert hidp_energy <= metrics["energy_j"]
    latency_avg = average_reduction(table, "latency_s")
    energy_avg = average_reduction(table, "energy_j")
    assert latency_avg["modnn"] > latency_avg["disnet"]
    assert all(value > 0 for value in energy_avg.values())
    print()
    print(report_fig5(table))

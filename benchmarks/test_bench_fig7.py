"""Bench: regenerate Fig. 7 (throughput over Mix 1-8)."""

from repro.experiments.fig7_throughput import average_gain, report_fig7, run_fig7


def test_bench_fig7(benchmark):
    table = benchmark(run_fig7)
    for mix, per_strategy in table.items():
        hidp = per_strategy["hidp"]
        for strategy, value in per_strategy.items():
            assert hidp >= value, f"{mix}: {strategy} out-throughputs HiDP"
    gains = average_gain(table)
    # paper: 56% average gain; ordering gains(modnn) > gains(disnet)
    assert gains["disnet"] > 20
    assert gains["modnn"] > gains["disnet"]
    print()
    print(report_fig7(table))

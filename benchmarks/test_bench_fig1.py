"""Bench: regenerate Fig. 1 (P1-P9 on the Jetson TX2).

Checks the paper anchors on every run: P1 worst everywhere,
EfficientNet-B0 best at P9, ResNet/VGG best around P7.
"""

from repro.experiments.fig1_motivation import best_config, normalised_fig1, report_fig1, run_fig1


def test_bench_fig1(benchmark):
    latencies = benchmark(run_fig1)
    norm = normalised_fig1(latencies)
    best = best_config(latencies)
    for model, values in norm.items():
        assert min(values.values()) < 1.0, f"{model}: P1 unexpectedly optimal"
    assert best["efficientnet_b0"] == "P9"
    assert best["resnet152"] in ("P6", "P7")
    assert best["vgg19"] in ("P6", "P7")
    print()
    print(report_fig1(latencies))

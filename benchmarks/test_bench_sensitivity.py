"""Bench: bandwidth-sensitivity sweep (extension experiment).

Asserts the qualitative crossover: HiDP keeps latency bounded at low
bandwidth by staying local, and monotonically benefits from a faster
medium.
"""

from repro.experiments.sensitivity import report_bandwidth_sweep, run_bandwidth_sweep


def test_bench_bandwidth_sensitivity(benchmark):
    rows = benchmark(run_bandwidth_sweep)
    latencies = [row["latency [ms]"] for row in rows]
    # weakly decreasing with bandwidth (5% tolerance for fixed overheads)
    for slow, fast in zip(latencies, latencies[1:]):
        assert fast <= slow * 1.05
    # at the slowest point the leader works alone or nearly so
    assert rows[0]["devices"] <= 2
    # at the fastest point distribution is in play
    assert rows[-1]["devices"] >= 1
    print()
    print(report_bandwidth_sweep(rows))
